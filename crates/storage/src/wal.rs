//! Durability primitives: a checksummed append-only record log and full
//! database snapshots.
//!
//! The write-ahead log is a flat file of length-prefixed records:
//!
//! ```text
//! ┌─────────────┬─────────────┬────────────────┐
//! │ len: u32 LE │ crc: u32 LE │ payload (len)  │  … repeated
//! └─────────────┴─────────────┴────────────────┘
//! ```
//!
//! `crc` is the CRC-32 (IEEE) of the payload. The reader treats *any* invalid
//! record — short header, length past end-of-file, checksum mismatch — as the
//! end of the log. A crash mid-append therefore loses exactly the torn tail
//! record and nothing else; [`read_wal`] reports how many bytes were valid so
//! the writer can truncate the garbage before appending again.
//!
//! Record payloads are opaque bytes at this layer. The [`ByteWriter`] /
//! [`ByteReader`] pair is the codec used by every layer above (operation and
//! decision encoding in `youtopia-core`, engine records in
//! `youtopia-concurrency`), and [`serialize_database`] /
//! [`deserialize_database`] snapshot a whole [`Database`] — catalog, version
//! chains, tombstones, labeled nulls and id allocators — into the same format.
//! Interned [`Symbol`]s are serialized as strings: the interner is
//! process-global, so raw symbol ids are meaningless across restarts.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write as IoWrite};
use std::path::Path;

use crate::database::Database;
use crate::value::Value;
use crate::version::{TupleVersion, UpdateId};

/// Errors raised by the durability layer.
#[derive(Debug)]
pub enum WalError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A record or snapshot failed to decode.
    Corrupt {
        /// Byte offset (within the payload being decoded) where decoding failed.
        offset: u64,
        /// What went wrong.
        reason: String,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Corrupt { offset, reason } => {
                write!(f, "corrupt wal data at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> WalError {
        WalError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Checksums and fingerprints
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3) of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Incremental FNV-1a 64-bit hasher, used for configuration fingerprints.
///
/// Not cryptographic — it only needs to detect *accidental* recovery with a
/// different engine configuration, where replay would silently diverge.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// Starts a hash at the FNV-1a offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(0xCBF2_9CE4_8422_2325)
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Feeds a string (length-delimited so `ab|c` ≠ `a|bc`).
    pub fn write_str(&mut self, s: &str) {
        self.write(&(s.len() as u64).to_le_bytes());
        self.write(s.as_bytes());
    }

    /// Feeds a u64.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

// ---------------------------------------------------------------------------
// Byte codec
// ---------------------------------------------------------------------------

/// Little-endian byte buffer writer used for all durable payloads.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty buffer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends raw bytes without a length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The buffer contents.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Little-endian cursor over a durable payload; every read is bounds-checked
/// and fails with [`WalError::Corrupt`] rather than panicking.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    fn corrupt(&self, reason: impl Into<String>) -> WalError {
        WalError::Corrupt { offset: self.pos as u64, reason: reason.into() }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WalError> {
        if self.buf.len() - self.pos < n {
            return Err(
                self.corrupt(format!("need {n} bytes, {} remain", self.buf.len() - self.pos))
            );
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, WalError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    pub fn take_u32(&mut self) -> Result<u32, WalError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn take_u64(&mut self) -> Result<u64, WalError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, WalError> {
        let len = self.take_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.corrupt("invalid utf-8"))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole payload has been consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    /// Fails unless the whole payload was consumed (trailing garbage detector).
    pub fn expect_done(&self) -> Result<(), WalError> {
        if self.is_done() {
            Ok(())
        } else {
            Err(self.corrupt(format!("{} trailing bytes", self.remaining())))
        }
    }
}

// ---------------------------------------------------------------------------
// The log file
// ---------------------------------------------------------------------------

/// Appends checksummed records to a log file. By default every append is
/// followed by an `fdatasync`; a *group-commit window* > 1 batches the sync
/// over that many records, trading a bounded crash-loss tail (at most
/// `window − 1` fully-written records plus one torn one, all recovered past
/// by [`read_wal`]'s prefix rule) for one disk flush per window.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    position: u64,
    /// Records per `fdatasync`; 1 = sync every append.
    group_commit: usize,
    /// Appends written since the last sync.
    unsynced: usize,
}

impl WalWriter {
    /// Creates (or truncates) the log file at `path`.
    pub fn create(path: &Path) -> Result<WalWriter, WalError> {
        let file = OpenOptions::new().write(true).create(true).truncate(true).open(path)?;
        Ok(WalWriter { file, position: 0, group_commit: 1, unsynced: 0 })
    }

    /// Opens an existing log for appending after `valid_len` bytes, truncating
    /// any torn tail past that point (see [`read_wal`]).
    pub fn open_append(path: &Path, valid_len: u64) -> Result<WalWriter, WalError> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)?;
        Ok(WalWriter { file, position: valid_len, group_commit: 1, unsynced: 0 })
    }

    /// Sets the group-commit window (clamped to at least 1): how many appended
    /// records may share one `fdatasync`.
    pub fn set_group_commit(&mut self, window: usize) {
        self.group_commit = window.max(1);
    }

    /// Appends one record (length + checksum + payload). The record is synced
    /// to disk immediately unless a group-commit window is open, in which case
    /// it becomes durable at the next window boundary or explicit [`flush`].
    ///
    /// [`flush`]: WalWriter::flush
    pub fn append(&mut self, payload: &[u8]) -> Result<(), WalError> {
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        use std::io::Seek;
        self.file.seek(std::io::SeekFrom::Start(self.position))?;
        self.file.write_all(&frame)?;
        self.unsynced += 1;
        if self.unsynced >= self.group_commit {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        self.position += frame.len() as u64;
        Ok(())
    }

    /// Forces any unsynced appends to disk (a no-op when the window is empty
    /// or group commit is off). Must be called before any durability point
    /// that assumes the log tail is on disk — e.g. cutting a snapshot.
    pub fn flush(&mut self) -> Result<(), WalError> {
        if self.unsynced > 0 {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Bytes appended so far (durable up to the last sync; call [`flush`] to
    /// make the full length durable).
    ///
    /// [`flush`]: WalWriter::flush
    pub fn position(&self) -> u64 {
        self.position
    }
}

/// A fully parsed log file: the valid records plus how much of the file they
/// cover (anything past `valid_len` is a torn tail from a crash mid-append).
#[derive(Debug)]
pub struct WalContents {
    /// Payloads of every valid record, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes covered by the valid records; reopen the writer at this length.
    pub valid_len: u64,
    /// Total file length (`valid_len < file_len` means a torn tail was dropped).
    pub file_len: u64,
}

/// Reads every valid record of a log file. Any invalid record — short header,
/// length past end-of-file, checksum mismatch — ends the log: it and anything
/// after it are dropped as a torn tail.
pub fn read_wal(path: &Path) -> Result<WalContents, WalError> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        if data.len() - pos < 8 {
            break;
        }
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
        if data.len() - pos - 8 < len {
            break;
        }
        let payload = &data[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break;
        }
        records.push(payload.to_vec());
        pos += 8 + len;
    }
    Ok(WalContents { records, valid_len: pos as u64, file_len: data.len() as u64 })
}

/// Writes `bytes` to `path` atomically: write a sibling temp file, sync it,
/// then rename over the destination.
pub fn write_file_atomic(path: &Path, bytes: &[u8]) -> Result<(), WalError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let mut file = File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_data()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Value and database serialization
// ---------------------------------------------------------------------------

const VALUE_CONST: u8 = 0;
const VALUE_NULL: u8 = 1;

/// Encodes a [`Value`]. Constants are written as strings because the symbol
/// interner is process-global: raw symbol ids do not survive a restart.
pub fn encode_value(value: &Value, out: &mut ByteWriter) {
    match value {
        Value::Const(sym) => {
            out.put_u8(VALUE_CONST);
            out.put_str(&sym.as_str());
        }
        Value::Null(null) => {
            out.put_u8(VALUE_NULL);
            out.put_u64(null.0);
        }
    }
}

/// Decodes a [`Value`] written by [`encode_value`].
pub fn decode_value(r: &mut ByteReader<'_>) -> Result<Value, WalError> {
    match r.take_u8()? {
        VALUE_CONST => Ok(Value::constant(&r.take_str()?)),
        VALUE_NULL => Ok(Value::Null(crate::value::NullId(r.take_u64()?))),
        tag => Err(WalError::Corrupt { offset: 0, reason: format!("unknown value tag {tag}") }),
    }
}

/// Serializes a whole database: catalog, id allocators, and every version of
/// every tuple (including tombstones), in deterministic order.
pub fn serialize_database(db: &Database) -> Vec<u8> {
    let mut out = ByteWriter::new();
    let catalog = db.catalog();
    out.put_u32(catalog.len() as u32);
    for schema in catalog.iter() {
        out.put_str(&schema.name);
        out.put_u32(schema.attributes.len() as u32);
        for attr in &schema.attributes {
            out.put_str(attr);
        }
    }
    let (next_tuple, next_null, next_seq) = db.wal_counters();
    out.put_u64(next_tuple);
    out.put_u64(next_null);
    out.put_u64(next_seq);
    let store = db.version_store();
    for schema in catalog.iter() {
        let relation = store.relation(schema.id).expect("catalog relation has storage");
        out.put_u64(relation.logical_len() as u64);
        for tuple in relation.tuple_ids() {
            let chain = relation.chain(tuple).expect("listed tuple has a chain");
            out.put_u64(tuple.0);
            out.put_u32(chain.versions().len() as u32);
            for version in chain.versions() {
                out.put_u64(version.update.0);
                out.put_u64(version.seq);
                match &version.data {
                    None => out.put_u8(0),
                    Some(data) => {
                        out.put_u8(1);
                        out.put_u32(data.len() as u32);
                        for value in data.iter() {
                            encode_value(value, &mut out);
                        }
                    }
                }
            }
        }
    }
    out.into_bytes()
}

/// Rebuilds a database from [`serialize_database`] bytes.
pub fn deserialize_database(bytes: &[u8]) -> Result<Database, WalError> {
    let mut r = ByteReader::new(bytes);
    let mut db = Database::new();
    let relation_count = r.take_u32()?;
    let mut relation_ids = Vec::with_capacity(relation_count as usize);
    for _ in 0..relation_count {
        let name = r.take_str()?;
        let attr_count = r.take_u32()?;
        let mut attrs = Vec::with_capacity(attr_count as usize);
        for _ in 0..attr_count {
            attrs.push(r.take_str()?);
        }
        let id = db.add_relation(name, attrs).map_err(|e| WalError::Corrupt {
            offset: 0,
            reason: format!("catalog rebuild failed: {e}"),
        })?;
        relation_ids.push(id);
    }
    let next_tuple = r.take_u64()?;
    let next_null = r.take_u64()?;
    let next_seq = r.take_u64()?;
    for relation in relation_ids {
        let tuple_count = r.take_u64()?;
        for _ in 0..tuple_count {
            let tuple = crate::tuple::TupleId(r.take_u64()?);
            let version_count = r.take_u32()?;
            if version_count == 0 {
                return Err(WalError::Corrupt {
                    offset: 0,
                    reason: "tuple with no versions".into(),
                });
            }
            for i in 0..version_count {
                let update = UpdateId(r.take_u64()?);
                let seq = r.take_u64()?;
                let data = match r.take_u8()? {
                    0 => None,
                    1 => {
                        let value_count = r.take_u32()?;
                        let mut values = Vec::with_capacity(value_count as usize);
                        for _ in 0..value_count {
                            values.push(decode_value(&mut r)?);
                        }
                        Some(values.into())
                    }
                    tag => {
                        return Err(WalError::Corrupt {
                            offset: 0,
                            reason: format!("unknown tuple-data tag {tag}"),
                        })
                    }
                };
                let version = TupleVersion { update, seq, data };
                if i == 0 {
                    db.store_mut().insert_new(relation, tuple, version);
                } else {
                    db.store_mut().push_version(relation, tuple, version);
                }
            }
        }
    }
    db.restore_wal_counters(next_tuple, next_null, next_seq);
    r.expect_done()?;
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value as V;
    use crate::version::Write;

    #[test]
    fn crc32_matches_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn byte_codec_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.take_str().unwrap(), "héllo");
        assert!(r.expect_done().is_ok());
        assert!(r.take_u8().is_err(), "reads past the end must fail, not panic");
    }

    #[test]
    fn wal_roundtrip_and_torn_tail() {
        let dir = std::env::temp_dir().join(format!(
            "youtopia-wal-test-{}-{}",
            std::process::id(),
            line!()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let payloads: Vec<Vec<u8>> = vec![b"first".to_vec(), b"second".to_vec(), vec![0u8; 100]];
        {
            let mut w = WalWriter::create(&path).unwrap();
            for p in &payloads {
                w.append(p).unwrap();
            }
        }
        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.records, payloads);
        assert_eq!(contents.valid_len, contents.file_len);

        // Truncating anywhere inside the last record drops exactly that record.
        let full = std::fs::read(&path).unwrap();
        let second_end = (8 + payloads[0].len() + 8 + payloads[1].len()) as u64;
        for cut in second_end..contents.file_len {
            std::fs::write(&path, &full[..cut as usize]).unwrap();
            let torn = read_wal(&path).unwrap();
            assert_eq!(torn.records, payloads[..2].to_vec(), "cut at {cut}");
            assert_eq!(torn.valid_len, second_end);
        }

        // Reopening at valid_len truncates the garbage and appends cleanly.
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let torn = read_wal(&path).unwrap();
        let mut w = WalWriter::open_append(&path, torn.valid_len).unwrap();
        w.append(b"replacement").unwrap();
        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.records.len(), 3);
        assert_eq!(contents.records[2], b"replacement");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_batches_syncs_but_loses_nothing_written() {
        let dir = std::env::temp_dir().join(format!(
            "youtopia-wal-test-{}-{}",
            std::process::id(),
            line!()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let payloads: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 16]).collect();
        {
            let mut w = WalWriter::create(&path).unwrap();
            w.set_group_commit(4);
            for p in &payloads {
                w.append(p).unwrap();
            }
            // 10 appends with a window of 4 leave 2 records unsynced; flush
            // must be an explicit durability point, and idempotent.
            w.flush().unwrap();
            w.flush().unwrap();
        }
        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.records, payloads);
        assert_eq!(contents.valid_len, contents.file_len);

        // Reopening after a simulated crash keeps the torn-tail prefix rule:
        // truncating mid-record drops exactly the torn record, group commit or
        // not — the frame format on disk is identical.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let torn = read_wal(&path).unwrap();
        assert_eq!(torn.records, payloads[..9].to_vec());
        let mut w = WalWriter::open_append(&path, torn.valid_len).unwrap();
        w.set_group_commit(4);
        w.append(b"after-crash").unwrap();
        w.flush().unwrap();
        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.records.len(), 10);
        assert_eq!(contents.records[9], b"after-crash");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_checksum_ends_the_log() {
        let dir = std::env::temp_dir().join(format!(
            "youtopia-wal-test-{}-{}",
            std::process::id(),
            line!()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(b"good").unwrap();
        w.append(b"flipped").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.records, vec![b"good".to_vec()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn database_snapshot_roundtrip() {
        let mut db = Database::new();
        let r = db.add_relation("R", ["a", "b"]).unwrap();
        db.add_relation("S", ["x"]).unwrap();
        let x = db.fresh_null();
        db.apply(
            &Write::Insert { relation: r, values: vec![V::Null(x), V::constant("k")] },
            UpdateId(1),
        )
        .unwrap();
        let t = db.insert_by_name("R", &["u", "v"], UpdateId(2));
        db.insert_by_name("S", &["w"], UpdateId(3));
        // Tombstone + a null-replacement version on top of live data.
        db.apply(&Write::Delete { relation: r, tuple: t }, UpdateId(4)).unwrap();
        db.apply(&Write::NullReplace { null: x, replacement: V::constant("NYC") }, UpdateId(5))
            .unwrap();

        let bytes = serialize_database(&db);
        let restored = deserialize_database(&bytes).unwrap();

        assert_eq!(serialize_database(&restored), bytes, "re-serialization is byte-identical");
        assert_eq!(restored.wal_counters(), db.wal_counters());
        for id in db.catalog().relation_ids() {
            assert_eq!(restored.scan(id, UpdateId::OMNISCIENT), db.scan(id, UpdateId::OMNISCIENT));
            assert_eq!(restored.scan(id, UpdateId(3)), db.scan(id, UpdateId(3)));
        }
        // The null index survives: replacing a null in the restored database
        // still finds nothing (x was already replaced before the snapshot).
        assert!(restored.null_occurrences(x, UpdateId::OMNISCIENT).is_empty());
        // Rollback still works against rebuilt chains (exercises tuple_locations).
        let mut restored = restored;
        let vanished = restored.rollback_update(UpdateId(3));
        assert_eq!(vanished.len(), 1);
    }

    #[test]
    fn snapshot_rejects_truncation_and_garbage() {
        let mut db = Database::new();
        db.add_relation("R", ["a"]).unwrap();
        db.insert_by_name("R", &["v"], UpdateId(1));
        let bytes = serialize_database(&db);
        assert!(deserialize_database(&bytes[..bytes.len() - 1]).is_err());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(deserialize_database(&extended).is_err(), "trailing garbage rejected");
    }
}
