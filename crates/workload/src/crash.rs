//! The crash-recovery scenario: a generated workload driven through a
//! **durable** [`ExchangeEngine`] in staggered waves, "crashed" partway (the
//! engine is dropped without a clean shutdown, abandoning whatever was
//! mid-chase), recovered from its durability directory, and driven to the
//! end. The scenario exercises the whole durability surface — WAL appends,
//! periodic snapshots, deterministic replay, and the resumption of
//! interrupted chases — under the same generators the Section 6 experiments
//! use, rather than hand-built fixtures.

use std::path::Path;

use youtopia_concurrency::{
    DurabilityConfig, EngineBuilder, ResolverPump, RunMetrics, SchedulerConfig, TrackerKind,
};
use youtopia_core::{ChaseError, InitialOp, RandomResolver};
use youtopia_mappings::satisfies_all;
use youtopia_storage::UpdateId;

use crate::config::{ArrivalProcess, ExperimentConfig, WorkloadKind};
use crate::experiment::ExperimentFixture;
use crate::update_gen::generate_workload;

/// What one crash-recovery scenario run observed.
#[derive(Clone, Debug)]
pub struct CrashRecoveryReport {
    /// Updates whose submission was logged before the simulated crash
    /// (including the final, deliberately unpumped wave that the crash
    /// interrupts mid-chase).
    pub submitted_before_crash: usize,
    /// Updates submitted by the *recovered* engine after the crash.
    pub submitted_after_crash: usize,
    /// Slot records the recovered engine still held at the end (bounded by
    /// the configured retention horizon plus a small lag).
    pub retained_slots: usize,
    /// The recovered engine's final metrics. `workload_size` counts every
    /// update ever admitted — replayed and fresh alike — so it equals the
    /// full workload when recovery lost nothing.
    pub metrics: RunMetrics,
    /// Whether the final database satisfied every active mapping.
    pub consistent: bool,
}

/// Runs the crash-recovery scenario for one workload under one tracker.
///
/// Phase 1 submits `crash_after_waves` waves to a durable engine (pumping
/// frontier answers to quiescence after each), then submits one more wave
/// and **drops the engine without shutting it down** — the crash. Phase 2
/// calls [`ExchangeEngine::recover`] on the same directory, pumps the
/// replayed mid-flight work to quiescence, and submits the rest of the
/// workload. Recovery replays the log tail deterministically, so nothing
/// that was acknowledged before the crash is lost; the interrupted wave's
/// chases resume where replay leaves them and their remaining frontier
/// questions are answered by the phase 2 resolver.
///
/// `dir` must be empty or nonexistent; the WAL, snapshots and retention
/// behaviour all live under it. Fails with [`ChaseError::InvalidDecision`]
/// if the scheduler is not deterministic (durability cannot replay a
/// free-running engine).
pub fn run_crash_recovery(
    fixture: &ExperimentFixture,
    config: &ExperimentConfig,
    kind: WorkloadKind,
    tracker: TrackerKind,
    dir: &Path,
    crash_after_waves: usize,
) -> Result<CrashRecoveryReport, ChaseError> {
    let mappings = fixture.mappings.clone();
    let ops = generate_workload(
        config,
        &fixture.schema,
        &fixture.initial_db,
        &mappings,
        kind,
        config.seed,
    );
    let wave = match config.arrival {
        ArrivalProcess::Staggered { wave } => wave.max(1),
        // The crash scenario needs *counted* waves to place the crash, so
        // open-loop Poisson arrivals fall back to the same fixed wave as
        // `Batch`.
        ArrivalProcess::Batch | ArrivalProcess::Poisson { .. } => 4,
    };
    let first_number = config.initial_tuples as u64 + 1_000;
    let scheduler = SchedulerConfig::with_tracker(tracker)
        .with_frontier_delay_rounds(config.frontier_delay_rounds)
        .with_workers(config.chase_workers.max(1));
    // One builder describes both lives of the engine: the run that crashes
    // and the recovery must agree on every fingerprinted knob.
    let builder = || {
        EngineBuilder::new()
            .scheduler(scheduler)
            .first_update_number(first_number)
            .durable(DurabilityConfig::new(dir).with_snapshot_every(16))
    };
    let durable_err = |e: youtopia_concurrency::RecoveryError| {
        ChaseError::InvalidDecision(format!("durability failure: {e}"))
    };

    let waves: Vec<Vec<InitialOp>> = ops.chunks(wave).map(|c| c.to_vec()).collect();
    let crash_at = crash_after_waves.min(waves.len());
    let mut resolver = RandomResolver::seeded(config.seed ^ 0xC4A5);

    // Phase 1: the run that will crash.
    let mut submitted_before_crash = 0usize;
    {
        let engine =
            builder().build(fixture.initial_db.clone(), mappings.clone()).map_err(durable_err)?;
        for batch in &waves[..crash_at] {
            submitted_before_crash += batch.len();
            engine
                .submit_batch(batch.clone())
                .map_err(|e| ChaseError::InvalidDecision(e.to_string()))?;
            ResolverPump::new(&engine, &mut resolver).run_until_quiescent()?;
        }
        // One more wave goes in *without* pumping its frontiers, so the
        // crash lands mid-chase: its submission is durable, its chase work
        // is not — exactly what replay must regenerate.
        if let Some(batch) = waves.get(crash_at) {
            submitted_before_crash += batch.len();
            engine
                .submit_batch(batch.clone())
                .map_err(|e| ChaseError::InvalidDecision(e.to_string()))?;
        }
        // The crash: drop without `shutdown()`. Workers are stopped wherever
        // their next step boundary falls; nothing further reaches the log.
        drop(engine);
    }

    // Phase 2: recover and finish.
    let engine = builder().recover(mappings).map_err(durable_err)?;
    // Replay has re-admitted the interrupted wave and re-run its chase up to
    // the last logged event; pump the remaining frontier questions.
    ResolverPump::new(&engine, &mut resolver).run_until_quiescent()?;
    let mut submitted_after_crash = 0usize;
    for batch in waves.iter().skip(crash_at + 1) {
        submitted_after_crash += batch.len();
        engine
            .submit_batch(batch.clone())
            .map_err(|e| ChaseError::InvalidDecision(e.to_string()))?;
        ResolverPump::new(&engine, &mut resolver).run_until_quiescent()?;
    }
    let consistent =
        engine.read(|db| satisfies_all(&db.snapshot(UpdateId::OMNISCIENT), engine.mappings()));
    let retained_slots = engine.retained_slots();
    let (_db, _mappings, metrics) = engine.shutdown();
    Ok(CrashRecoveryReport {
        submitted_before_crash,
        submitted_after_crash,
        retained_slots,
        metrics,
        consistent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::build_fixture;
    use std::path::PathBuf;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir =
                std::env::temp_dir().join(format!("youtopia-crash-{}-{tag}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn crashed_runs_recover_and_finish_the_workload() {
        let mut config = ExperimentConfig::tiny();
        config.arrival = ArrivalProcess::Staggered { wave: 3 };
        let fixture = build_fixture(&config).unwrap();
        let dir = TempDir::new("mixed");
        let report = run_crash_recovery(
            &fixture,
            &config,
            WorkloadKind::Mixed,
            TrackerKind::Precise,
            &dir.0,
            2,
        )
        .unwrap();
        assert!(report.consistent, "recovered database must satisfy the mappings");
        let total = report.submitted_before_crash + report.submitted_after_crash;
        assert!(total > 0);
        assert_eq!(
            report.metrics.workload_size, total,
            "no acknowledged submission may be lost to the crash"
        );
        assert!(report.retained_slots <= total);
    }

    #[test]
    fn crashing_after_every_wave_still_recovers() {
        let mut config = ExperimentConfig::tiny();
        config.arrival = ArrivalProcess::Staggered { wave: 4 };
        let fixture = build_fixture(&config).unwrap();
        let dir = TempDir::new("late");
        let report = run_crash_recovery(
            &fixture,
            &config,
            WorkloadKind::AllInserts,
            TrackerKind::Coarse,
            &dir.0,
            usize::MAX,
        )
        .unwrap();
        assert!(report.consistent);
        assert_eq!(report.submitted_after_crash, 0, "nothing left to submit after the crash");
        assert_eq!(report.metrics.workload_size, report.submitted_before_crash);
    }
}
