//! Micro-benchmarks for the replication layer: delta-batch encode/decode (the
//! wire codec a transport pays per gossip message) and full catch-up of a
//! node that slept through a partition (the dominant cost of heal — every
//! missed event is re-ingested and the fold replayed).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use youtopia_core::replication::{decode_delta_batch, encode_delta_batch, StateVector};
use youtopia_core::InitialOp;
use youtopia_mappings::MappingSet;
use youtopia_replication::{LinkFaults, NodeId, ReplicaNode, ReplicaSet, Topology};
use youtopia_storage::{Database, UpdateId, Value};

/// The Example 3.1 travel fragment every replica starts from.
fn genesis() -> (Database, MappingSet) {
    let mut db = Database::new();
    db.add_relation("A", ["location", "name"]).unwrap();
    db.add_relation("T", ["attraction", "company", "tour_start"]).unwrap();
    db.add_relation("R", ["company", "attraction", "review"]).unwrap();
    let mut mappings = MappingSet::new();
    mappings
        .add_parsed(db.catalog(), "sigma3: A(l, n) & T(n, c, cs) -> exists r. R(c, n, r)")
        .unwrap();
    let u = UpdateId(0);
    db.insert_by_name("A", &["Geneva", "Geneva Winery"], u);
    db.insert_by_name("T", &["Geneva Winery", "XYZ", "Syracuse"], u);
    db.insert_by_name("R", &["XYZ", "Geneva Winery", "Great!"], u);
    (db, mappings)
}

/// A tour insert: terminates without questions, so a node can accumulate an
/// arbitrarily long event log unattended.
fn tour_op(db: &Database, i: usize) -> InitialOp {
    InitialOp::Insert {
        relation: db.relation_id("T").unwrap(),
        values: vec![
            Value::constant("Geneva Winery"),
            Value::constant(&format!("Co{i}")),
            Value::constant(&format!("City{i}")),
        ],
    }
}

/// A node that has locally submitted `events` tour inserts.
fn loaded_node(events: usize) -> ReplicaNode {
    let (db, mappings) = genesis();
    let ops: Vec<InitialOp> = (0..events).map(|i| tour_op(&db, i)).collect();
    let mut node = ReplicaNode::new(NodeId(0), db, mappings);
    for op in ops {
        node.submit(op).unwrap();
    }
    node
}

/// Encoding a full-log delta batch to wire bytes, per backlog size: what a
/// gossip responder pays to answer an empty state vector.
fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("sync/encode_deltas");
    for events in [16usize, 128] {
        let node = loaded_node(events);
        let empty = StateVector::new();
        group.bench_with_input(BenchmarkId::from_parameter(events), &events, |b, _| {
            b.iter(|| {
                let batch = node.deltas_since(&empty).unwrap();
                black_box(encode_delta_batch(&batch).len())
            })
        });
    }
    group.finish();
}

/// Decode + re-ingest of an already-known batch: the duplicate-suppression
/// fast path every redundant gossip delivery takes.
fn bench_decode_apply(c: &mut Criterion) {
    let mut node = loaded_node(64);
    let bytes = encode_delta_batch(&node.deltas_since(&StateVector::new()).unwrap());
    c.bench_function("sync/decode_apply/redundant_64", |b| {
        b.iter(|| {
            let batch = decode_delta_batch(&bytes).unwrap();
            let report = node.apply(&batch).unwrap();
            black_box(report.duplicates)
        })
    });
}

/// Heal-and-converge after a partition during which one side accumulated a
/// backlog: decode, ingest, canonical-order fold replay included.
fn bench_catchup(c: &mut Criterion) {
    let mut group = c.benchmark_group("sync/catchup_after_partition");
    group.sample_size(10);
    for backlog in [8usize, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(backlog), &backlog, |b, &backlog| {
            b.iter_batched(
                || {
                    let (db, mappings) = genesis();
                    let ops: Vec<InitialOp> = (0..backlog).map(|i| tour_op(&db, i)).collect();
                    let mut set = ReplicaSet::new(
                        2,
                        Topology::FullMesh,
                        LinkFaults::default(),
                        9,
                        db,
                        mappings,
                    );
                    set.partition(0, 1);
                    for op in ops {
                        set.submit(0, op).unwrap();
                    }
                    set.heal();
                    set
                },
                |mut set| {
                    let rounds = set.converge(1, 32).unwrap();
                    black_box(rounds)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode_apply, bench_catchup);
criterion_main!(benches);
