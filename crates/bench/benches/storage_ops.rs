//! Micro-benchmarks for the storage substrate: inserts, visibility-filtered
//! scans, index probes, null-replacement and specificity checks.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use youtopia_storage::{is_more_specific, Database, NullId, UpdateId, Value, Write};

fn populated(rows: usize) -> Database {
    let mut db = Database::new();
    db.add_relation("R", ["a", "b", "c"]).unwrap();
    let rel = db.relation_id("R").unwrap();
    for i in 0..rows {
        db.apply(
            &Write::Insert {
                relation: rel,
                values: vec![
                    Value::constant(&format!("k{}", i % 50)),
                    Value::constant(&format!("v{i}")),
                    Value::Null(NullId(i as u64)),
                ],
            },
            UpdateId(1 + (i % 7) as u64),
        )
        .unwrap();
    }
    db
}

fn bench_inserts(c: &mut Criterion) {
    c.bench_function("storage/insert_1k_tuples", |b| {
        b.iter(|| {
            let db = populated(1_000);
            black_box(db.total_visible(UpdateId::OMNISCIENT))
        })
    });
}

fn bench_scans_and_probes(c: &mut Criterion) {
    let db = populated(2_000);
    let rel = db.relation_id("R").unwrap();
    let mut group = c.benchmark_group("storage/read");
    group.bench_function("scan_visible", |b| {
        b.iter(|| black_box(db.scan(rel, UpdateId::OMNISCIENT).len()))
    });
    group.bench_function("scan_low_visibility", |b| {
        b.iter(|| black_box(db.scan(rel, UpdateId(2)).len()))
    });
    group.bench_function("index_probe", |b| {
        b.iter(|| {
            black_box(db.candidates(rel, 0, Value::constant("k7"), UpdateId::OMNISCIENT).len())
        })
    });
    group.bench_function("null_occurrences", |b| {
        b.iter(|| black_box(db.null_occurrences(NullId(500), UpdateId::OMNISCIENT).len()))
    });
    // The per-column candidate memo: the chase re-probes a handful of hot
    // (column, value) keys every step, so the warm path should be a map hit.
    // The cold variant starts from a fresh clone (clones start with a cold
    // memo) and pays the index-bucket walk once per key.
    group.bench_function("column_index_memo_warm", |b| {
        // Warm the memo once, then measure repeated hits across 8 hot keys.
        for i in 0..8 {
            db.candidates(rel, 0, Value::constant(&format!("k{i}")), UpdateId::OMNISCIENT);
        }
        b.iter(|| {
            let mut total = 0usize;
            for i in 0..8 {
                total += db
                    .candidates(rel, 0, Value::constant(&format!("k{i}")), UpdateId::OMNISCIENT)
                    .len();
            }
            black_box(total)
        })
    });
    group.bench_function("column_index_memo_cold", |b| {
        b.iter_batched(
            || db.clone(),
            |db| {
                let mut total = 0usize;
                for i in 0..8 {
                    total += db
                        .candidates(rel, 0, Value::constant(&format!("k{i}")), UpdateId::OMNISCIENT)
                        .len();
                }
                black_box(total)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_null_replacement(c: &mut Criterion) {
    c.bench_function("storage/null_replace_in_2k", |b| {
        b.iter_batched(
            || populated(2_000),
            |mut db| {
                db.apply(
                    &Write::NullReplace { null: NullId(100), replacement: Value::constant("done") },
                    UpdateId(9),
                )
                .unwrap()
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_specificity(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage/specificity");
    for arity in [2usize, 4, 8] {
        let general: Vec<Value> = (0..arity).map(|i| Value::Null(NullId(i as u64 % 3))).collect();
        let specific: Vec<Value> =
            (0..arity).map(|i| Value::constant(&format!("c{}", i % 3))).collect();
        group.bench_with_input(BenchmarkId::from_parameter(arity), &arity, |b, _| {
            b.iter(|| black_box(is_more_specific(&specific, &general)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_inserts,
    bench_scans_and_probes,
    bench_null_replacement,
    bench_specificity
);
criterion_main!(benches);
