//! Differential tests for the multi-threaded scheduler: a deterministic
//! [`ParallelRun`] must be indistinguishable from the single-threaded
//! [`ConcurrentRun`] reference — the same final database, the same
//! [`RunMetrics`] (modulo wall clock), the same per-update statistics and
//! therefore the same abort *sets* — across trackers, scheduling policies,
//! chase modes, workloads and worker counts. This pins the parallel step
//! pipeline (two-phase steps, striped logs, sequencer) to the reference
//! semantics the same way `tests/queue_equivalence.rs` pins the chase modes.

use std::collections::BTreeSet;

use proptest::prelude::*;
use youtopia::chase::ChaseMode;
use youtopia::concurrency::{RunMetrics, SchedulerConfig, SchedulingPolicy, SpeculationMode};
use youtopia::mappings::satisfies_all;
use youtopia::workload::{build_fixture, generate_workload, ExperimentConfig, WorkloadKind};
use youtopia::{ConcurrentRun, InitialOp, ParallelRun, RandomResolver, TrackerKind, UpdateId};

/// Strips the wall-clock field — and the speculation counters, which count
/// *pre*-execution attempts and so depend on worker timing — so metrics
/// compare byte-exactly on everything the runs actually committed.
fn scrub(mut m: RunMetrics) -> RunMetrics {
    m.wall_time = std::time::Duration::ZERO;
    m.speculations_started = 0;
    m.speculations_committed = 0;
    m.speculations_discarded = 0;
    m
}

/// Byte-exact rendering of every relation's visible contents plus the null
/// counter — the "final database state" the equivalence is pinned on.
fn render(db: &youtopia::Database) -> String {
    let mut out = String::new();
    for relation in db.catalog().relation_ids() {
        out.push_str(&format!("{relation:?}: {:?}\n", db.scan(relation, UpdateId::OMNISCIENT)));
    }
    out.push_str(&format!("nulls: {}\n", db.null_counter()));
    out
}

/// Runs one generated workload under both schedulers and asserts equivalence.
fn schedulers_agree(
    seed: u64,
    tracker: TrackerKind,
    kind: WorkloadKind,
    policy: SchedulingPolicy,
    chase_mode: ChaseMode,
) {
    let mut config = ExperimentConfig::tiny();
    config.seed = seed;
    let fixture = build_fixture(&config).expect("fixture builds");
    let ops: Vec<InitialOp> = generate_workload(
        &config,
        &fixture.schema,
        &fixture.initial_db,
        &fixture.mappings,
        kind,
        seed,
    )
    .into_iter()
    .take(16)
    .collect();
    let first_number = config.initial_tuples as u64 + 1_000;
    let scheduler = SchedulerConfig::with_tracker(tracker)
        .with_policy(policy)
        .with_chase_mode(chase_mode)
        .with_frontier_delay_rounds(3);

    let mut reference = ConcurrentRun::new(
        fixture.initial_db.clone(),
        fixture.mappings.clone(),
        ops.clone(),
        first_number,
        scheduler,
    );
    let ref_metrics = reference.run(&mut RandomResolver::seeded(seed ^ 0xFA11)).unwrap();
    let ref_stats = reference.update_stats();
    let (ref_db, ref_mappings, _) = reference.into_parts();
    assert!(satisfies_all(&ref_db.snapshot(UpdateId::OMNISCIENT), &ref_mappings));
    let ref_abort_set: BTreeSet<UpdateId> =
        ref_stats.iter().filter(|(_, s)| s.restarts > 0).map(|(id, _)| *id).collect();

    for speculation in [SpeculationMode::Off, SpeculationMode::Eager] {
        for workers in [2usize, 4] {
            let par_config = scheduler.with_workers(workers).with_speculation(speculation);
            let mut run = ParallelRun::new(
                fixture.initial_db.clone(),
                fixture.mappings.clone(),
                ops.clone(),
                first_number,
                par_config,
            );
            let metrics = run.run(&mut RandomResolver::seeded(seed ^ 0xFA11)).unwrap();
            let label = format!(
                "seed {seed}, {tracker}, {kind}, {policy:?}, {chase_mode:?}, \
                 {workers} workers, {speculation:?}"
            );
            // Every speculation is accounted for: committed or discarded.
            assert_eq!(
                metrics.speculations_started,
                metrics.speculations_committed + metrics.speculations_discarded,
                "{label}: speculation balance"
            );
            if speculation == SpeculationMode::Off {
                assert_eq!(metrics.speculations_started, 0, "{label}: no speculation when off");
            }
            assert_eq!(scrub(metrics), scrub(ref_metrics.clone()), "{label}: metrics");
            let stats = run.update_stats();
            assert_eq!(stats, ref_stats, "{label}: per-update stats");
            let abort_set: BTreeSet<UpdateId> =
                stats.iter().filter(|(_, s)| s.restarts > 0).map(|(id, _)| *id).collect();
            assert_eq!(abort_set, ref_abort_set, "{label}: abort set");
            let (db, _, _) = run.into_parts();
            assert_eq!(render(&db), render(&ref_db), "{label}: final database state");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// PRECISE abort sets and final states survive parallel scheduling on the
    /// mixed workload (inserts + deletes, forward and backward repairs).
    #[test]
    fn precise_mixed_workloads_agree(seed in 0u64..10_000) {
        schedulers_agree(
            seed,
            TrackerKind::Precise,
            WorkloadKind::Mixed,
            SchedulingPolicy::StepRoundRobin,
            ChaseMode::Incremental,
        );
    }

    /// COARSE over deep cascades: long-lived violation queues cross many
    /// sequencer hand-offs.
    #[test]
    fn coarse_deep_cascades_agree(seed in 0u64..10_000) {
        schedulers_agree(
            seed,
            TrackerKind::Coarse,
            WorkloadKind::DeepCascade,
            SchedulingPolicy::StepRoundRobin,
            ChaseMode::Incremental,
        );
    }

    /// The stratum policy (an update keeps stepping until it blocks) and the
    /// NAIVE tracker, over the skewed hot-relation workload.
    #[test]
    fn naive_stratum_skewed_agree(seed in 0u64..10_000) {
        schedulers_agree(
            seed,
            TrackerKind::Naive,
            WorkloadKind::Skewed,
            SchedulingPolicy::StratumRoundRobin,
            ChaseMode::Incremental,
        );
    }

    /// The reference chase mode (full queue recheck) is scheduled identically
    /// too — the scheduler must be agnostic of the queue maintenance mode.
    #[test]
    fn full_recheck_mode_agrees(seed in 0u64..10_000) {
        schedulers_agree(
            seed,
            TrackerKind::Precise,
            WorkloadKind::NullReplacementHeavy,
            SchedulingPolicy::StepRoundRobin,
            ChaseMode::FullRecheck,
        );
    }
}
