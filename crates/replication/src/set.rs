//! [`ReplicaSet`]: N replica nodes exchanging encoded deltas over in-process
//! fault-injectable links.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use youtopia_concurrency::replicate::SyncError;
use youtopia_core::replication::{decode_delta_batch, encode_delta_batch, StateVector};
use youtopia_core::{ChaseError, EventStamp, FrontierResolver, InitialOp, RandomResolver};
use youtopia_mappings::MappingSet;
use youtopia_storage::wal::{deserialize_database, serialize_database, WalError};
use youtopia_storage::Database;

use crate::link::{LinkFaults, Topology};
use crate::node::ReplicaNode;
use crate::NodeId;

/// A failure of the replica-set harness.
#[derive(Debug)]
pub enum HarnessError {
    /// A node's sync or fold failed.
    Sync(SyncError),
    /// A node's engine failed while answering a frontier.
    Engine(ChaseError),
    /// A wire message failed to decode (links don't corrupt in this harness,
    /// so this indicates a codec bug).
    Codec(WalError),
    /// [`ReplicaSet::converge`] ran out of rounds. Carries the round budget
    /// that was exhausted.
    NoConvergence(usize),
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Sync(e) => write!(f, "sync failed: {e}"),
            HarnessError::Engine(e) => write!(f, "engine failed: {e}"),
            HarnessError::Codec(e) => write!(f, "delta batch failed to decode: {e}"),
            HarnessError::NoConvergence(rounds) => {
                write!(f, "replica set failed to converge within {rounds} rounds")
            }
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<SyncError> for HarnessError {
    fn from(e: SyncError) -> HarnessError {
        HarnessError::Sync(e)
    }
}

impl From<ChaseError> for HarnessError {
    fn from(e: ChaseError) -> HarnessError {
        HarnessError::Engine(e)
    }
}

impl From<WalError> for HarnessError {
    fn from(e: WalError) -> HarnessError {
        HarnessError::Codec(e)
    }
}

/// What one [`ReplicaSet::sync_round`] accomplished, summed over every
/// delivered message.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundReport {
    /// Messages delivered (after fault injection; includes duplicates).
    pub messages: usize,
    /// Events newly appended across all nodes.
    pub appended: usize,
    /// Events skipped as already-known duplicates.
    pub duplicates: usize,
    /// Suffix gaps observed (reordered delivery); re-requested next round.
    pub gaps: usize,
    /// Rebuilds performed this round (events landed behind a fold).
    pub rebuilds: usize,
}

/// N replicated engines over one shared genesis, wired by a [`Topology`],
/// exchanging **encoded** delta batches (the real wire format, codec
/// included) over in-process links with injectable [`LinkFaults`] and
/// explicit partitions.
///
/// This is both the test harness behind the convergence proptests and the
/// reference for what a network transport must do: per edge and direction,
/// ship `encode_delta_batch(src.deltas_since(&dst.state_vector()))` and apply
/// it at `dst`.
pub struct ReplicaSet {
    nodes: Vec<ReplicaNode>,
    topology: Topology,
    faults: LinkFaults,
    rng: StdRng,
    /// Severed undirected edges, stored normalized (`low < high`).
    cut: BTreeSet<(usize, usize)>,
}

impl ReplicaSet {
    /// Builds `n` nodes, each over its own copy of `db` (cloned through the
    /// snapshot codec, so every node starts from identical bytes).
    pub fn new(
        n: usize,
        topology: Topology,
        faults: LinkFaults,
        seed: u64,
        db: Database,
        mappings: MappingSet,
    ) -> ReplicaSet {
        let genesis = serialize_database(&db);
        drop(db);
        let nodes = (0..n)
            .map(|i| {
                let copy = deserialize_database(&genesis)
                    .expect("genesis bytes came from serialize_database");
                ReplicaNode::new(NodeId(i as u32), copy, mappings.clone())
            })
            .collect();
        ReplicaSet {
            nodes,
            topology,
            faults,
            rng: StdRng::seed_from_u64(seed),
            cut: BTreeSet::new(),
        }
    }

    /// The number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the set is empty (it never usefully is).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node at `i`.
    pub fn node(&self, i: usize) -> &ReplicaNode {
        &self.nodes[i]
    }

    /// The node at `i`, mutably (e.g. to [`ReplicaNode::submit`]).
    pub fn node_mut(&mut self, i: usize) -> &mut ReplicaNode {
        &mut self.nodes[i]
    }

    /// Submits `op` at node `i`.
    pub fn submit(&mut self, i: usize, op: InitialOp) -> Result<EventStamp, HarnessError> {
        Ok(self.nodes[i].submit(op)?)
    }

    /// Severs the link between nodes `a` and `b` (no-op on non-edges; the
    /// nodes keep running, they just stop hearing from each other).
    pub fn partition(&mut self, a: usize, b: usize) {
        self.cut.insert((a.min(b), a.max(b)));
    }

    /// Restores every severed link.
    pub fn heal(&mut self) {
        self.cut.clear();
    }

    /// Every node's state vector, in node order.
    pub fn state_vectors(&self) -> Result<Vec<StateVector>, HarnessError> {
        self.nodes.iter().map(|n| Ok(n.state_vector()?)).collect()
    }

    /// Every node's rendered database, serialized, in node order.
    pub fn rendered(&self) -> Vec<Vec<u8>> {
        self.nodes.iter().map(|n| n.rendered()).collect()
    }

    /// One gossip round: for every un-severed topology edge, both directions
    /// request what they are missing (by state vector), and the responses —
    /// encoded to wire bytes — are delivered subject to the configured
    /// faults. All requests are computed against the pre-round state, so a
    /// duplicated or reordered delivery within the round exercises the
    /// duplicate/gap handling rather than being trivially fresh.
    pub fn sync_round(&mut self) -> Result<RoundReport, HarnessError> {
        let mut wire: Vec<(usize, Vec<u8>)> = Vec::new();
        for (a, b) in self.topology.edges(self.nodes.len()) {
            if self.cut.contains(&(a.min(b), a.max(b))) {
                continue;
            }
            for (src, dst) in [(a, b), (b, a)] {
                let want = self.nodes[dst].state_vector()?;
                let batch = self.nodes[src].deltas_since(&want)?;
                if batch.is_empty() {
                    continue;
                }
                let bytes = encode_delta_batch(&batch);
                if self.faults.duplicate_prob > 0.0 && self.rng.gen_bool(self.faults.duplicate_prob)
                {
                    wire.push((dst, bytes.clone()));
                }
                wire.push((dst, bytes));
            }
        }
        if self.faults.reorder {
            wire.shuffle(&mut self.rng);
        }
        let mut report = RoundReport::default();
        for (dst, bytes) in wire {
            let batch = decode_delta_batch(&bytes)?;
            let before = self.nodes[dst].rebuilds();
            let sync = self.nodes[dst].apply(&batch)?;
            report.messages += 1;
            report.appended += sync.appended;
            report.duplicates += sync.duplicates;
            report.gaps += sync.gaps.len();
            report.rebuilds += self.nodes[dst].rebuilds() - before;
        }
        Ok(report)
    }

    /// Whether every node is settled on the same event set: equal state
    /// vectors, no pending frontiers, no stalled or queued fold work. By the
    /// canonical-fold guarantee this implies byte-identical rendered
    /// databases.
    pub fn converged(&self) -> Result<bool, HarnessError> {
        let mut svs = self.nodes.iter().map(|n| n.state_vector());
        let Some(first) = svs.next() else { return Ok(true) };
        let first = first?;
        for sv in svs {
            if sv? != first {
                return Ok(false);
            }
        }
        for node in &self.nodes {
            if !node.settled()? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Drives the set to convergence: gossip rounds, with stalled frontier
    /// questions answered by a [`RandomResolver`] seeded from `answer_seed` —
    /// always at the **lowest-indexed** node currently asking, so decisions
    /// made on one node demonstrably propagate instead of every node
    /// answering its own. Returns the number of rounds taken.
    pub fn converge(&mut self, answer_seed: u64, max_rounds: usize) -> Result<usize, HarnessError> {
        let mut resolver = RandomResolver::seeded(answer_seed);
        self.converge_with(&mut resolver, max_rounds)
    }

    /// [`converge`](Self::converge) with a caller-supplied resolver.
    pub fn converge_with(
        &mut self,
        resolver: &mut dyn FrontierResolver,
        max_rounds: usize,
    ) -> Result<usize, HarnessError> {
        for round in 1..=max_rounds {
            self.sync_round()?;
            if let Some(node) =
                self.nodes.iter_mut().find(|n| !n.engine().pending_frontiers().is_empty())
            {
                node.answer_pending(resolver)?;
            }
            if self.converged()? {
                return Ok(round);
            }
        }
        Err(HarnessError::NoConvergence(max_rounds))
    }

    /// Total rebuilds performed across all nodes since construction.
    pub fn total_rebuilds(&self) -> usize {
        self.nodes.iter().map(|n| n.rebuilds()).sum()
    }

    /// Panics unless every node renders byte-identical databases — the
    /// convergence assertion the tests lean on, with a useful message.
    pub fn assert_identical(&self) {
        let rendered = self.rendered();
        let Some((first, rest)) = rendered.split_first() else { return };
        for (i, bytes) in rest.iter().enumerate() {
            assert!(
                bytes == first,
                "node {} renders {} bytes, node 0 renders {} — replicas diverged",
                i + 1,
                bytes.len(),
                first.len()
            );
        }
    }
}
