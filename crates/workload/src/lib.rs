//! # youtopia-workload
//!
//! Synthetic workload generation and the experiment harness reproducing
//! Section 6 of the Youtopia paper:
//!
//! * a random schema of relations with 1–6 attributes and a fixed pool of
//!   constant strings ([`schema_gen`]);
//! * random tgds with 1–3 atoms per side, inter-atom joins and constants
//!   ([`mapping_gen`]);
//! * an initial database populated through the cooperative chase itself, with
//!   a simulated user answering frontier requests ([`data_gen`]);
//! * all-insert and mixed insert/delete workloads ([`update_gen`]);
//! * the sweep over mapping densities and trackers that produces the series of
//!   Figures 3 and 4 ([`experiment`]), and text/CSV reports ([`report`]);
//! * the fault-injected "million-user day" survival scenario for admission
//!   QoS and frontier lifecycle management ([`scenario`]);
//! * the multi-node replication scenario driving a generated workload across
//!   gossiping replicated engines to byte-identical convergence ([`sync`]).
//!
//! ```no_run
//! use youtopia_concurrency::TrackerKind;
//! use youtopia_workload::{run_experiment, render_figure, ExperimentConfig, WorkloadKind};
//!
//! let config = ExperimentConfig::quick();
//! let results = run_experiment(
//!     &config,
//!     WorkloadKind::AllInserts,
//!     &[TrackerKind::Coarse, TrackerKind::Precise, TrackerKind::Naive],
//!     None,
//! )
//! .unwrap();
//! println!("{}", render_figure(&results, "Figure 3 (reduced scale)"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod crash;
pub mod data_gen;
pub mod experiment;
pub mod mapping_gen;
pub mod report;
pub mod scenario;
pub mod schema_gen;
pub mod sync;
pub mod update_gen;

pub use config::{poisson_arrival_ticks, ArrivalProcess, ExperimentConfig, WorkloadKind};
pub use crash::{run_crash_recovery, CrashRecoveryReport};
pub use data_gen::{generate_initial_database, InitialDataStats};
pub use experiment::{
    build_fixture, run_experiment, run_single, ExperimentFixture, ExperimentPoint,
    ExperimentResults,
};
pub use mapping_gen::{generate_mappings, mapping_stats, MappingSetStats};
pub use report::{percentile, render_figure, to_csv, LatencySummary};
pub use scenario::{
    run_million_user_day, AbandoningResolver, FaultInjectingResolver, ScenarioConfig,
    ScenarioReport, SlowResolver,
};
pub use schema_gen::{generate_schema, GeneratedSchema};
pub use sync::{run_sync_scenario, SyncScenarioReport};
pub use update_gen::{
    cascade_depths, cascade_relations, generate_workload, hot_relation, visible_nulls,
    workload_mix, WorkloadMix,
};
