//! Prints the speculation counters behind the README perf table's
//! `chase/speculative/*` row: for the same two workloads the bench group
//! measures (disjoint deep-cascade, contended skewed), run the deterministic
//! scheduler with 4 workers and eager speculation and report how many
//! speculative steps were started, how many survived validation, and the
//! discard rate.
//!
//! Usage: cargo run -p youtopia-bench --release --example speculation_report

use youtopia_concurrency::{ParallelRun, SchedulerConfig, SpeculationMode, TrackerKind};
use youtopia_core::RandomResolver;
use youtopia_workload::{build_fixture, generate_workload, ExperimentConfig, WorkloadKind};

fn main() {
    let mut config = ExperimentConfig::quick();
    config.initial_tuples = 200;
    config.workload_updates = 24;
    let fixture = build_fixture(&config).expect("fixture builds");
    let first_number = config.initial_tuples as u64 + 1_000;

    for (kind, label) in
        [(WorkloadKind::DeepCascade, "disjoint"), (WorkloadKind::Skewed, "contended")]
    {
        let ops = generate_workload(
            &config,
            &fixture.schema,
            &fixture.initial_db,
            &fixture.mappings,
            kind,
            0,
        );
        let scheduler = SchedulerConfig {
            tracker: TrackerKind::Coarse,
            workers: 4,
            deterministic: true,
            ..SchedulerConfig::default()
        }
        .with_speculation(SpeculationMode::Eager);
        let mut run = ParallelRun::new(
            fixture.initial_db.clone(),
            fixture.mappings.clone(),
            ops.clone(),
            first_number,
            scheduler,
        );
        let metrics = run.run(&mut RandomResolver::seeded(7)).expect("run succeeds");
        let started = metrics.speculations_started;
        let discarded = metrics.speculations_discarded;
        let rate = if started == 0 { 0.0 } else { discarded as f64 / started as f64 * 100.0 };
        println!(
            "{label}: steps={} speculations started={} committed={} discarded={} ({rate:.1}% discard)",
            metrics.steps, started, metrics.speculations_committed, discarded,
        );
    }
}
