//! The multi-node sync scenario: a generated Section 6 workload spread
//! round-robin across N replicated engines gossiping state-vector deltas,
//! with a partition severed across the middle of the schedule and healed at
//! the end. The scenario exercises the replication layer under the same
//! generators the experiments use — random schemas, random tgds, chase-built
//! initial data — rather than the hand-built travel fixture, and requires
//! the full guarantee: byte-identical rendered databases that still satisfy
//! every mapping.

use youtopia_core::ChaseError;
use youtopia_mappings::satisfies_all;
use youtopia_replication::{HarnessError, LinkFaults, ReplicaSet, Topology};
use youtopia_storage::wal::deserialize_database;
use youtopia_storage::UpdateId;

use crate::config::{ExperimentConfig, WorkloadKind};
use crate::experiment::ExperimentFixture;
use crate::update_gen::generate_workload;

/// What one multi-node sync scenario run observed.
#[derive(Clone, Debug)]
pub struct SyncScenarioReport {
    /// Replica count.
    pub nodes: usize,
    /// Updates submitted across all nodes (round-robin).
    pub submitted: usize,
    /// Gossip rounds [`ReplicaSet::converge`] needed after the final heal.
    pub rounds: usize,
    /// Fold rebuilds across all nodes — concurrent edits behind a fold.
    pub rebuilds: usize,
    /// Whether every node rendered byte-identical databases.
    pub identical: bool,
    /// Whether the converged database satisfies every active mapping.
    pub consistent: bool,
}

/// Runs a generated workload across `nodes` replicas on `topology`, hostile
/// links included if `faults` says so. Submissions go round-robin; a
/// partition between nodes 0 and 1 covers the first half of the schedule (so
/// both sides accumulate genuinely concurrent folds); every second
/// submission triggers a gossip round. After the heal, the set is driven to
/// convergence (frontier questions answered by a seeded random resolver at
/// the lowest-indexed asking node) and the rendered bytes are compared.
pub fn run_sync_scenario(
    fixture: &ExperimentFixture,
    config: &ExperimentConfig,
    kind: WorkloadKind,
    nodes: usize,
    topology: Topology,
    faults: LinkFaults,
) -> Result<SyncScenarioReport, ChaseError> {
    let harness_err = |e: HarnessError| ChaseError::InvalidDecision(format!("sync failure: {e}"));
    let ops = generate_workload(
        config,
        &fixture.schema,
        &fixture.initial_db,
        &fixture.mappings,
        kind,
        config.seed,
    );
    let mut set = ReplicaSet::new(
        nodes,
        topology,
        faults,
        config.seed ^ 0x5fc0,
        fixture.initial_db.clone(),
        fixture.mappings.clone(),
    );
    set.partition(0, 1);
    let half = ops.len() / 2;
    let mut submitted = 0usize;
    for (i, op) in ops.iter().enumerate() {
        if i == half {
            set.heal();
        }
        set.submit(i % nodes, op.clone()).map_err(harness_err)?;
        submitted += 1;
        if i % 2 == 0 {
            set.sync_round().map_err(harness_err)?;
        }
    }
    set.heal();
    let rounds = set.converge(config.seed ^ 0xD1FF, 256).map_err(harness_err)?;
    let rendered = set.rendered();
    let identical = rendered.iter().all(|bytes| bytes == &rendered[0]);
    let db = deserialize_database(&rendered[0])
        .map_err(|e| ChaseError::InvalidDecision(format!("rendered bytes undecodable: {e}")))?;
    let consistent = satisfies_all(&db.snapshot(UpdateId::OMNISCIENT), &fixture.mappings);
    Ok(SyncScenarioReport {
        nodes,
        submitted,
        rounds,
        rebuilds: set.total_rebuilds(),
        identical,
        consistent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::build_fixture;

    #[test]
    fn generated_workloads_sync_across_three_nodes() {
        let config = ExperimentConfig::tiny();
        let fixture = build_fixture(&config).unwrap();
        let report = run_sync_scenario(
            &fixture,
            &config,
            WorkloadKind::AllInserts,
            3,
            Topology::FullMesh,
            LinkFaults::hostile(),
        )
        .unwrap();
        assert!(report.submitted > 0);
        assert!(report.identical, "replicas diverged on a generated workload");
        assert!(report.consistent, "converged database must satisfy the mappings");
    }
}
