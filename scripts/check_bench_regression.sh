#!/usr/bin/env bash
# Compares freshly produced target/BENCH_<name>.json files against the
# committed bench-baselines/ with a two-tier gate:
#
#   * soft tier  (default >25%):  emits a GitHub warning annotation for every
#     regressed median — advisory, never fails the job (the CI runner is a
#     single shared core, so medians are indicative, not authoritative);
#   * hard tier  (default >100%): a median on the guarded benchmark groups
#     (chase/* and storage_ops/*) that at least doubled fails the job — a 2x
#     regression is beyond scheduler noise even on a shared core.
#
# A baseline file whose corresponding target/BENCH_<name>.json was never
# produced is a HARD ERROR (a bench binary was renamed or dropped), and so is
# a baseline benchmark id missing from a produced file (a group or case was
# renamed or dropped) — either way the perf gate silently stopped guarding
# something it used to.
#
# The reverse direction is NOT silent either: a freshly produced
# target/BENCH_<name>.json with no committed baseline (a newly added bench
# group) emits a warning and seeds bench-baselines/<name> from the fresh
# summary, so the new group is guarded from its first run — commit the seeded
# file in the PR that adds the bench.
#
# The chase/parallel/*, chase/engine_ingest/* and chase/speculative/* groups
# are exempt from the hard tier: all benchmark OS-thread worker pools (the
# free-running scheduler, the long-lived engine, and the speculating
# deterministic sequencer) whose medians on the 1-core shared runner are
# dominated by OS scheduling of the workers, so a 2x swing there is noise,
# not signal. The soft tier still warns on them.
#
# Update the baselines intentionally by copying target/BENCH_*.json over
# bench-baselines/ in the PR that changes the perf.
#
# Usage: scripts/check_bench_regression.sh [soft-threshold-%] [hard-threshold-%]
set -u

SOFT=${1:-25}
HARD=${2:-100}
BASELINE_DIR="$(dirname "$0")/../bench-baselines"
TARGET_DIR="$(dirname "$0")/../target"
# Benchmark id prefixes the hard tier guards, and the exemption within them.
# (BENCH_storage_ops.json's ids use the `storage/` prefix.)
HARD_GROUPS='^(chase/|storage/)'
HARD_EXEMPT='^chase/(parallel|engine_ingest|speculative)/'

if ! command -v jq >/dev/null 2>&1; then
    echo "jq not found; skipping bench regression check"
    exit 0
fi

soft_hits=0
hard_hits=0
missing=0
for baseline in "$BASELINE_DIR"/BENCH_*.json; do
    name=$(basename "$baseline")
    current="$TARGET_DIR/$name"
    if [ ! -f "$current" ]; then
        echo "::error file=bench-baselines/$name::baseline $name has no freshly produced $current — a bench binary was renamed or dropped; the perf gate no longer guards it"
        missing=$((missing + 1))
        continue
    fi
    # Baseline ids with no counterpart in the fresh summary: a renamed or
    # dropped benchmark group/case inside a surviving bench binary.
    while IFS= read -r id; do
        [ -n "$id" ] || continue
        echo "::error file=bench-baselines/$name::baseline id $id is missing from the fresh $name — a benchmark was renamed or dropped; the perf gate no longer guards it"
        missing=$((missing + 1))
    done < <(jq -r --slurpfile cur "$current" '
        ($cur[0].results | map(.id)) as $now
        | .results[].id | select(. as $id | $now | index($id) | not)' "$baseline")
    # id -> median pairs from both files, joined on id.
    while IFS=$'\t' read -r id base_ns cur_ns; do
        pct=$(jq -n --argjson b "$base_ns" --argjson c "$cur_ns" \
            '(($c - $b) / $b * 100) | round')
        if [ "$pct" -gt "$HARD" ] && echo "$id" | grep -qE "$HARD_GROUPS" \
            && ! echo "$id" | grep -qE "$HARD_EXEMPT"; then
            echo "::error file=bench-baselines/$name::$id regressed ${pct}% (baseline ${base_ns}ns -> ${cur_ns}ns, hard threshold ${HARD}%)"
            hard_hits=$((hard_hits + 1))
        elif [ "$pct" -gt "$SOFT" ]; then
            echo "::warning file=bench-baselines/$name::$id regressed ${pct}% (baseline ${base_ns}ns -> ${cur_ns}ns, soft threshold ${SOFT}%)"
            soft_hits=$((soft_hits + 1))
        fi
    done < <(jq -r --slurpfile cur "$current" '
        (.results | map({(.id): .median_ns}) | add) as $base
        | ($cur[0].results | map({(.id): .median_ns}) | add) as $now
        | $base | to_entries[]
        | select($now[.key] != null)
        | [.key, (.value | tostring), ($now[.key] | tostring)] | @tsv' "$baseline")
done

# The symmetric check: fresh summaries with no committed baseline. Silence
# here would mean a newly added bench group is never guarded; instead warn
# and seed the baseline from the fresh summary so the gate picks it up
# immediately (and the PR author is told to commit it).
seeded=0
for current in "$TARGET_DIR"/BENCH_*.json; do
    [ -e "$current" ] || continue
    name=$(basename "$current")
    baseline="$BASELINE_DIR/$name"
    if [ ! -f "$baseline" ]; then
        echo "::warning file=bench-baselines/$name::fresh $name has no committed baseline — seeding bench-baselines/$name from this run; commit it so the new bench group is guarded"
        cp "$current" "$baseline"
        seeded=$((seeded + 1))
    fi
done

if [ "$missing" -gt 0 ]; then
    echo "FAIL: $missing baseline file(s)/id(s) without a current-side counterpart"
    exit 1
fi
if [ "$hard_hits" -gt 0 ]; then
    echo "FAIL: $hard_hits median(s) regressed beyond the hard ${HARD}% tier on guarded groups"
    exit 1
fi
if [ "$soft_hits" -eq 0 ]; then
    echo "bench medians within ${SOFT}% of baselines"
else
    echo "bench regressions detected ($soft_hits soft warning(s) above; hard tier ${HARD}% clean)"
fi
if [ "$seeded" -gt 0 ]; then
    echo "NOTE: seeded $seeded new baseline file(s) — commit bench-baselines/ additions"
fi
exit 0
