//! Micro-benchmarks for violation detection: the incremental violation
//! queries a chase step poses (Section 4.2) and full-relation scans, plus the
//! per-write "does this change the answer?" check used by conflict detection
//! and the `PRECISE` tracker.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use youtopia_mappings::{
    change_affects_query, find_violations, violations_from_change, MappingSet, ViolationQuery,
    ViolationSeed,
};
use youtopia_storage::{Database, TupleChange, UpdateId, Value, Write};

/// A travel-style database with `per_relation` rows in each relation.
fn setup(per_relation: usize) -> (Database, MappingSet, TupleChange) {
    let mut db = Database::new();
    db.add_relation("A", ["location", "name"]).unwrap();
    db.add_relation("T", ["attraction", "company", "tour_start"]).unwrap();
    db.add_relation("R", ["company", "attraction", "review"]).unwrap();
    let mut mappings = MappingSet::new();
    mappings
        .add_parsed(db.catalog(), "sigma3: A(l, n) & T(n, c, cs) -> exists r. R(c, n, r)")
        .unwrap();
    let u = UpdateId(0);
    for i in 0..per_relation {
        db.insert_by_name("A", &[&format!("loc{i}"), &format!("attr{i}")], u);
        db.insert_by_name(
            "T",
            &[&format!("attr{i}"), &format!("co{i}"), &format!("city{}", i % 10)],
            u,
        );
        db.insert_by_name("R", &[&format!("co{i}"), &format!("attr{i}"), "fine"], u);
    }
    // The change we repeatedly check: a brand-new tour without a review.
    let t = db.relation_id("T").unwrap();
    let changes = db
        .apply(
            &Write::Insert {
                relation: t,
                values: vec![
                    Value::constant("attr3"),
                    Value::constant("newco"),
                    Value::constant("city0"),
                ],
            },
            UpdateId(1),
        )
        .unwrap();
    (db, mappings, changes[0].clone())
}

fn bench_incremental_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("violations/incremental");
    group.sample_size(15);
    for size in [100usize, 500, 1_000] {
        let (db, mappings, change) = setup(size);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            let snap = db.snapshot(UpdateId::OMNISCIENT);
            b.iter(|| black_box(violations_from_change(&snap, &mappings, &change).1.len()))
        });
    }
    group.finish();
}

fn bench_full_scan_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("violations/full_scan");
    group.sample_size(15);
    for size in [100usize, 500] {
        let (db, mappings, _) = setup(size);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            let snap = db.snapshot(UpdateId::OMNISCIENT);
            b.iter(|| black_box(find_violations(&snap, &mappings).len()))
        });
    }
    group.finish();
}

fn bench_affectedness_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("violations/affected_by_change");
    group.sample_size(15);
    for size in [100usize, 1_000] {
        let (db, mappings, change) = setup(size);
        let sigma3 = mappings.by_name("sigma3").unwrap().id;
        let query = ViolationQuery { mapping: sigma3, seed: ViolationSeed::Full };
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            let snap = db.snapshot(UpdateId::OMNISCIENT);
            b.iter(|| black_box(change_affects_query(&snap, &mappings, &query, &change)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_incremental_detection,
    bench_full_scan_detection,
    bench_affectedness_check
);
criterion_main!(benches);
