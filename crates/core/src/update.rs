//! Youtopia updates and their chase-step execution model (Definition 2.6,
//! Algorithms 1 and 2).
//!
//! An [`UpdateExecution`] is the state machine of one update: the initial user
//! operation plus every database modification the chase performs on its
//! behalf, including the frontier operations supplied by users. The schedulers
//! and the long-lived `ExchangeEngine` (in `youtopia-concurrency`) drive many
//! executions concurrently at chase-step granularity; the single-update
//! facade `UpdateExchange` there drives one at a time.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use youtopia_mappings::{violations_from_change, MappingSet, Violation, ViolationKind};
use youtopia_storage::{
    specialization, substitute_nulls, AppliedWrite, ChaseData, DataView, Database, NullId,
    RelationId, TupleData, TupleId, UpdateId, Value, Write,
};

use crate::error::ChaseError;
use crate::frontier::{
    FrontierDecision, FrontierRequest, FrontierTuple, NegativeFrontier, PositiveAction,
    PositiveFrontier,
};
use crate::read_query::{more_specific_tuples, ReadQuery};

/// The initial user operation that starts an update (Section 2): a tuple
/// insertion, a tuple deletion, or a null-replacement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InitialOp {
    /// Insert a tuple.
    Insert {
        /// Target relation.
        relation: RelationId,
        /// Values (constants or labeled nulls).
        values: Vec<Value>,
    },
    /// Delete a tuple.
    Delete {
        /// The tuple's relation.
        relation: RelationId,
        /// The tuple to delete.
        tuple: TupleId,
    },
    /// Replace all occurrences of a labeled null with a constant.
    NullReplace {
        /// The null to replace.
        null: NullId,
        /// The replacement value.
        replacement: Value,
    },
}

impl InitialOp {
    /// The corresponding write operation.
    pub fn to_write(&self) -> Write {
        match self {
            InitialOp::Insert { relation, values } => {
                Write::Insert { relation: *relation, values: values.clone() }
            }
            InitialOp::Delete { relation, tuple } => {
                Write::Delete { relation: *relation, tuple: *tuple }
            }
            InitialOp::NullReplace { null, replacement } => {
                Write::NullReplace { null: *null, replacement: *replacement }
            }
        }
    }

    /// An update is *positive* if its initial operation was an insertion or a
    /// null-completion, and *negative* if it was a deletion (Definition 2.6).
    pub fn is_positive(&self) -> bool {
        !matches!(self, InitialOp::Delete { .. })
    }
}

/// Where an update currently stands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateState {
    /// The update has pending writes (or queued violations) and can take a
    /// chase step.
    Ready,
    /// The update is blocked waiting for a frontier operation.
    AwaitingFrontier,
    /// The update has terminated: no pending writes and no live violations.
    Terminated,
}

/// Counters describing one update's execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Chase steps executed.
    pub steps: usize,
    /// Frontier operations received.
    pub frontier_ops: usize,
    /// Tuple-level changes written.
    pub changes: usize,
    /// Violations enqueued over the update's lifetime.
    pub violations_seen: usize,
    /// Times this execution was reset for a restart after an abort.
    pub restarts: usize,
}

/// Summary of one completed update.
///
/// There is exactly one way a report comes into existence —
/// [`UpdateReport::for_execution`] over the update's [`UpdateExecution`] — so
/// the single-update facade, the batch schedulers and the long-lived engine
/// all assemble their per-update metrics through the same path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateReport {
    /// The update's priority number.
    pub update: UpdateId,
    /// Execution counters.
    pub stats: UpdateStats,
    /// Whether the update terminated (it always does unless a step limit
    /// was hit).
    pub terminated: bool,
}

impl UpdateReport {
    /// The report describing `exec` as it currently stands.
    pub fn for_execution(exec: &UpdateExecution) -> UpdateReport {
        UpdateReport { update: exec.id(), stats: exec.stats(), terminated: exec.is_terminated() }
    }
}

/// The outcome of one chase step (Algorithm 2), as observed by the scheduler.
#[derive(Clone, Debug)]
pub struct StepOutcome {
    /// The update that took the step.
    pub update: UpdateId,
    /// Writes performed at the start of the step, with their effects.
    pub writes: Vec<AppliedWrite>,
    /// Read queries performed by the step (violation + correction queries).
    pub reads: Vec<ReadQuery>,
    /// Number of new violations discovered.
    pub new_violations: usize,
    /// Frontier request, if the step ended blocked on user input.
    pub frontier_request: Option<FrontierRequest>,
    /// The update's state after the step.
    pub state: UpdateState,
}

/// How a chase execution maintains its violation queue and repair plans
/// across steps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ChaseMode {
    /// Delta-driven maintenance (the default): the queue is indexed by the
    /// relations each violation reads, `still_violated` only re-runs on
    /// violations whose read relations' write epochs moved since their last
    /// check, and each queued violation keeps a memoised repair plan that is
    /// invalidated by the same epoch test. Step cost is proportional to what
    /// changed, not to what is queued.
    #[default]
    Incremental,
    /// The pre-optimisation reference path: every step re-runs
    /// `still_violated` over the whole queue and re-plans every violation
    /// until a deterministic one is found. Kept for differential testing
    /// (`tests/queue_equivalence.rs`) and the `chase/end_to_end` benchmark
    /// baseline, mirroring how `replan_violation_queries_for_change` backs
    /// the compiled-plan cache.
    FullRecheck,
}

/// How an execution finds out which of its watched relations changed between
/// steps — the ownership model of violation-detection state.
///
/// Orthogonal to [`ChaseMode`]: the chase mode decides *how much* queue
/// maintenance a step performs (delta-driven vs whole-queue), this mode
/// decides *where the change signal comes from*. Both keep the per-violation
/// epoch compare as the exact inner filter, so the two modes produce
/// byte-identical executions (pinned by `tests/viewmaint_equivalence.rs`,
/// exactly as `tests/queue_equivalence.rs` pins the chase modes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ViolationStateMode {
    /// The engine-shared violation index (the default): the store keeps one
    /// committed-write delta log (the
    /// [`ViolationFeed`](youtopia_storage::ViolationFeed)) and the execution
    /// holds a plain integer cursor into it. A step asks the feed which of
    /// its indexed relations appear in the window its cursor missed — cost
    /// proportional to what changed since this update's previous step, and
    /// independent of how many updates are live on the engine.
    #[default]
    Shared,
    /// The pre-index reference path: the execution owns per-relation epoch
    /// watermarks and probes every indexed relation's write epoch each step.
    /// Kept as the differential baseline, like [`ChaseMode::FullRecheck`].
    PerUpdate,
}

/// One queued violation together with the bookkeeping the delta-driven queue
/// needs: the relations it reads, the epochs those relations had when the
/// violation was last known to be live, and the memoised repair plan.
#[derive(Clone, Debug)]
struct QueuedViolation {
    violation: Violation,
    /// Relations whose writes can change this violation's status or repair
    /// ([`Violation::read_relations`]).
    read_relations: Vec<RelationId>,
    /// `read_relations`' write epochs at the last `still_violated` check (or
    /// at discovery). While they all still match the store, the violation is
    /// live without re-evaluating anything.
    checked_epochs: Vec<u64>,
    /// Memoised repair plan, reusable while its epochs match the store.
    plan: Option<MemoisedPlan>,
}

/// A repair plan computed in an earlier step, valid while the epochs of the
/// violation's read relations are unchanged. The plan's read queries were
/// logged when it was computed and stay live in the concurrency layer's read
/// log until the owning update terminates or aborts, so reusing the plan
/// never loses a conflict.
#[derive(Clone, Debug)]
struct MemoisedPlan {
    plan: RepairPlan,
    /// Write epochs of the violation's read relations at plan time.
    epochs: Vec<u64>,
}

/// The execution state machine of a single Youtopia update.
#[derive(Clone, Debug)]
pub struct UpdateExecution {
    id: UpdateId,
    initial: InitialOp,
    mode: ChaseMode,
    state: UpdateState,
    pending_writes: Vec<Write>,
    /// The violation queue, keyed by a monotonically increasing enqueue
    /// sequence number so iteration preserves discovery order (the order the
    /// old `VecDeque` queue repaired in).
    viol_queue: BTreeMap<u64, QueuedViolation>,
    next_viol_seq: u64,
    /// Hash membership of the queue (dedup of re-discovered violations).
    queued_set: HashSet<Violation>,
    /// relation → enqueue numbers of the queued violations reading it.
    queue_index: HashMap<RelationId, BTreeSet<u64>>,
    /// relation → write epoch up to which every queued violation indexed
    /// under the relation has been validated. A step only revisits relations
    /// whose store epoch differs (covering its own writes, other updates'
    /// writes and rollbacks alike). Only consulted in
    /// [`ViolationStateMode::PerUpdate`]; the shared mode replaces the whole
    /// watermark map with `delta_cursor`.
    index_epochs: HashMap<RelationId, u64>,
    /// Where the shared violation index's delta feed owns the change signal.
    viol_mode: ViolationStateMode,
    /// This execution's cursor into the engine-shared committed-delta feed
    /// ([`ViolationStateMode::Shared`]): every delta below it has been folded
    /// into the queue's bookkeeping. Advanced at the end of each step's queue
    /// maintenance; resynchronised by the engine after a speculative commit.
    delta_cursor: u64,
    pending_frontier: Option<FrontierRequest>,
    stats: UpdateStats,
}

#[derive(Clone, Debug)]
enum RepairPlan {
    Deterministic(Vec<Write>),
    Frontier(FrontierRequest),
}

impl UpdateExecution {
    /// Creates the execution for an update with priority number `id`, using
    /// the default delta-driven queue maintenance.
    pub fn new(id: UpdateId, initial: InitialOp) -> UpdateExecution {
        UpdateExecution::with_mode(id, initial, ChaseMode::default())
    }

    /// Creates the execution with an explicit [`ChaseMode`] (tests and
    /// benchmarks use [`ChaseMode::FullRecheck`] as the reference path).
    pub fn with_mode(id: UpdateId, initial: InitialOp, mode: ChaseMode) -> UpdateExecution {
        UpdateExecution::configured(id, initial, mode, ViolationStateMode::default())
    }

    /// Creates the execution with both maintenance modes chosen explicitly —
    /// the constructor the engine's builder feeds.
    pub fn configured(
        id: UpdateId,
        initial: InitialOp,
        mode: ChaseMode,
        viol_mode: ViolationStateMode,
    ) -> UpdateExecution {
        let first_write = initial.to_write();
        UpdateExecution {
            id,
            initial,
            mode,
            state: UpdateState::Ready,
            pending_writes: vec![first_write],
            viol_queue: BTreeMap::new(),
            next_viol_seq: 0,
            queued_set: HashSet::new(),
            queue_index: HashMap::new(),
            index_epochs: HashMap::new(),
            viol_mode,
            delta_cursor: 0,
            pending_frontier: None,
            stats: UpdateStats::default(),
        }
    }

    /// Rebuilds an execution from a durable snapshot: the id, initial
    /// operation and counters survive; the violation queue does not need to
    /// (snapshots are only taken at engine quiescence, where every retained
    /// execution is either terminated or failed — nothing mid-chase). A
    /// restored terminated execution reports exactly what the original did
    /// through [`UpdateReport::for_execution`].
    pub fn restored(
        id: UpdateId,
        initial: InitialOp,
        mode: ChaseMode,
        viol_mode: ViolationStateMode,
        stats: UpdateStats,
        terminated: bool,
    ) -> UpdateExecution {
        let mut exec = UpdateExecution::configured(id, initial, mode, viol_mode);
        exec.stats = stats;
        if terminated {
            exec.state = UpdateState::Terminated;
            exec.pending_writes.clear();
        }
        exec
    }

    /// The queue-maintenance mode this execution runs with.
    pub fn mode(&self) -> ChaseMode {
        self.mode
    }

    /// Where this execution's change signal comes from (shared feed cursor or
    /// per-update epoch watermarks).
    pub fn violation_state(&self) -> ViolationStateMode {
        self.viol_mode
    }

    /// Resynchronises the shared-feed cursor to `seq`. Called by the engine
    /// after committing a speculative step: the overlay numbered its buffered
    /// deltas from the read-locked base, and the commit re-applies them at the
    /// real sequence — every delta the jump skips is either this update's own
    /// re-applied write (its epochs are already stamped in the queue) or a
    /// commit into a relation the queue does not watch (validation pinned all
    /// watched relations, so interference would have discarded the outcome).
    pub fn sync_delta_cursor(&mut self, seq: u64) {
        self.delta_cursor = seq;
    }

    /// The update's priority number.
    pub fn id(&self) -> UpdateId {
        self.id
    }

    /// The initial user operation.
    pub fn initial(&self) -> &InitialOp {
        &self.initial
    }

    /// Current state.
    pub fn state(&self) -> UpdateState {
        self.state
    }

    /// Whether the update has terminated.
    pub fn is_terminated(&self) -> bool {
        self.state == UpdateState::Terminated
    }

    /// The pending frontier request, if the update is blocked.
    pub fn pending_frontier(&self) -> Option<&FrontierRequest> {
        self.pending_frontier.as_ref()
    }

    /// Number of violations currently queued.
    pub fn queued_violations(&self) -> usize {
        self.viol_queue.len()
    }

    /// The queued violations in queue (discovery) order. Exposed for the
    /// queue-equivalence differential tests.
    pub fn queued_violation_list(&self) -> Vec<Violation> {
        self.viol_queue.values().map(|e| e.violation.clone()).collect()
    }

    /// The relations the update's next chase step can touch: the targets of
    /// its pending writes plus the read relations of its queued violations
    /// (the delta-driven queue's relation index). The parallel scheduler
    /// shards its run queues by this footprint. Sorted and deduplicated; a
    /// pending null-replacement contributes nothing (its reach is unknown
    /// until executed).
    pub fn next_touched_relations(&self) -> Vec<RelationId> {
        let mut out: Vec<RelationId> = self
            .pending_writes
            .iter()
            .filter_map(|w| match w {
                Write::Insert { relation, .. } | Write::Delete { relation, .. } => Some(*relation),
                Write::NullReplace { .. } => None,
            })
            .collect();
        out.extend(self.queue_index.keys().copied());
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The reference implementation of queue maintenance, kept for
    /// differential testing (mirroring the compiled-plan cache's
    /// `replan_violation_queries_for_change` reference): re-runs
    /// `still_violated` over the *whole* queue on this update's current
    /// snapshot and returns the violations that survive, in queue order.
    /// After every step of a [`ChaseMode::Incremental`] execution the queue
    /// must equal exactly this set (pinned by `tests/queue_equivalence.rs`);
    /// a [`ChaseMode::FullRecheck`] execution retains exactly this set as its
    /// in-step maintenance.
    pub fn recheck_all_violations(&self, db: &Database, mappings: &MappingSet) -> Vec<Violation> {
        let snap = db.snapshot(self.id);
        self.viol_queue
            .values()
            .filter(|e| e.violation.still_violated(&snap, mappings.get(e.violation.mapping)))
            .map(|e| e.violation.clone())
            .collect()
    }

    /// Execution counters.
    pub fn stats(&self) -> UpdateStats {
        self.stats
    }

    /// Resets the execution to redo the update from its initial operation
    /// (used after an abort; the writes themselves are rolled back by the
    /// database).
    pub fn reset_for_restart(&mut self) {
        self.state = UpdateState::Ready;
        self.pending_writes = vec![self.initial.to_write()];
        self.viol_queue.clear();
        self.queued_set.clear();
        self.queue_index.clear();
        self.index_epochs.clear();
        self.pending_frontier = None;
        self.stats.restarts += 1;
    }

    /// Enqueues a newly discovered violation (the caller has already checked
    /// `queued_set` for membership), indexing it under the relations it reads
    /// and stamping the current write epochs.
    fn enqueue<D: ChaseData>(&mut self, db: &D, mappings: &MappingSet, violation: Violation) {
        let tgd = mappings.get(violation.mapping);
        let read_relations = violation.read_relations(tgd);
        let checked_epochs: Vec<u64> =
            read_relations.iter().map(|r| db.relation_epoch(*r)).collect();
        let seq = self.next_viol_seq;
        self.next_viol_seq += 1;
        for (&relation, &epoch) in read_relations.iter().zip(checked_epochs.iter()) {
            self.queue_index.entry(relation).or_default().insert(seq);
            // First entry under the relation: the index is clean up to now.
            // An existing (possibly older) watermark is kept — other entries
            // under the relation may still need a recheck.
            self.index_epochs.entry(relation).or_insert(epoch);
        }
        self.queued_set.insert(violation.clone());
        self.viol_queue
            .insert(seq, QueuedViolation { violation, read_relations, checked_epochs, plan: None });
    }

    /// Removes a queue entry, unregistering it from the membership set and
    /// the relation index.
    fn remove_entry(&mut self, seq: u64) {
        let Some(entry) = self.viol_queue.remove(&seq) else { return };
        self.queued_set.remove(&entry.violation);
        for relation in entry.read_relations {
            if let Some(seqs) = self.queue_index.get_mut(&relation) {
                seqs.remove(&seq);
                if seqs.is_empty() {
                    self.queue_index.remove(&relation);
                    self.index_epochs.remove(&relation);
                }
            }
        }
    }

    /// Delta-driven queue maintenance: re-runs `still_violated` only on the
    /// violations indexed under a relation that changed since this update
    /// last looked — everything else is provably unchanged. Dirty relations
    /// cover this step's own writes as well as writes and rollbacks other
    /// updates performed since our previous step.
    ///
    /// The change signal depends on [`ViolationStateMode`]: the shared mode
    /// replays the engine-global delta feed from this execution's cursor
    /// (cost: the window it missed), the per-update mode probes every indexed
    /// relation's epoch against its own watermarks (cost: the queue's
    /// relation footprint). Both are over-approximations of "some queued
    /// violation's checked epoch moved", and the per-entry epoch compare
    /// below filters exactly — so the final queue state is identical either
    /// way.
    fn recheck_touched<D: ChaseData>(
        &mut self,
        db: &D,
        view: &dyn DataView,
        mappings: &MappingSet,
    ) {
        let dirty: Vec<RelationId> = match self.viol_mode {
            ViolationStateMode::PerUpdate => self
                .queue_index
                .keys()
                .copied()
                .filter(|r| self.index_epochs.get(r).copied() != Some(db.relation_epoch(*r)))
                .collect(),
            ViolationStateMode::Shared => {
                if self.queue_index.is_empty() {
                    // Nothing queued, nothing to validate: jump the cursor
                    // over the whole backlog without scanning it. This is
                    // what makes a freshly admitted execution's first step
                    // O(1) in the feed regardless of history length.
                    self.delta_cursor = db.delta_seq();
                    return;
                }
                let interest: Vec<RelationId> = self.queue_index.keys().copied().collect();
                let dirty = db
                    .dirty_relations(self.delta_cursor, &interest)
                    // The backlog was truncated past our cursor: every
                    // indexed relation is a candidate; the per-entry compare
                    // below filters exactly what the per-update probe would.
                    .unwrap_or(interest);
                self.delta_cursor = db.delta_seq();
                dirty
            }
        };
        if dirty.is_empty() {
            return;
        }
        let mut candidates: BTreeSet<u64> = BTreeSet::new();
        for relation in &dirty {
            if let Some(seqs) = self.queue_index.get(relation) {
                candidates.extend(seqs.iter().copied());
            }
        }
        for seq in candidates {
            let alive = {
                let Some(entry) = self.viol_queue.get_mut(&seq) else { continue };
                let unchanged = entry
                    .read_relations
                    .iter()
                    .zip(entry.checked_epochs.iter())
                    .all(|(r, e)| db.relation_epoch(*r) == *e);
                if unchanged {
                    // The dirty relation's epoch moved for someone else; every
                    // epoch this violation reads is unchanged.
                    continue;
                }
                if entry.violation.still_violated(view, mappings.get(entry.violation.mapping)) {
                    entry.checked_epochs =
                        entry.read_relations.iter().map(|r| db.relation_epoch(*r)).collect();
                    true
                } else {
                    false
                }
            };
            if !alive {
                self.remove_entry(seq);
            }
        }
        for relation in dirty {
            if self.queue_index.contains_key(&relation) {
                self.index_epochs.insert(relation, db.relation_epoch(relation));
            }
        }
    }

    /// Reference queue maintenance ([`ChaseMode::FullRecheck`]): the old
    /// whole-queue `retain` over `still_violated`.
    fn recheck_everything(&mut self, view: &dyn DataView, mappings: &MappingSet) {
        let stale: Vec<u64> = self
            .viol_queue
            .iter()
            .filter(|(_, e)| !e.violation.still_violated(view, mappings.get(e.violation.mapping)))
            .map(|(seq, _)| *seq)
            .collect();
        for seq in stale {
            self.remove_entry(seq);
        }
    }

    /// Executes one chase step (Algorithm 2): performs the pending writes,
    /// detects the new violations they cause, re-checks queued violations, and
    /// either schedules corrective writes for the next step or emits a
    /// frontier request.
    ///
    /// Generic over [`ChaseData`], like both halves below: the scheduler runs
    /// steps directly against the [`Database`] and speculatively against a
    /// `SpeculativeDb` overlay through the *same* code, which is what makes a
    /// committed speculation byte-identical to a direct step.
    pub fn step<D: ChaseData>(
        &mut self,
        db: &mut D,
        mappings: &MappingSet,
    ) -> Result<StepOutcome, ChaseError> {
        let applied = self.begin_step(db)?;
        self.finish_step(db, mappings, applied)
    }

    /// The write half of a chase step: performs the writes scheduled by the
    /// previous step (or the initial user operation) and returns their
    /// effects. This is the only part of a step that needs exclusive database
    /// access; the parallel scheduler calls it under the database write lock
    /// and runs [`Self::finish_step`] under a read lock, so analysis of
    /// different updates can overlap. Calling the two halves back to back is
    /// exactly [`Self::step`].
    pub fn begin_step<D: ChaseData>(
        &mut self,
        db: &mut D,
    ) -> Result<Vec<AppliedWrite>, ChaseError> {
        if self.state != UpdateState::Ready {
            return Err(ChaseError::NotReady(self.id));
        }
        self.stats.steps += 1;

        // Perform the writes scheduled by the previous step (or the initial
        // user operation). The write set is handed over wholesale so the
        // batch fast path can move the writes into the log records instead
        // of cloning them.
        let writes = std::mem::take(&mut self.pending_writes);
        let applied = db.apply_all_owned(writes, self.id)?;
        self.stats.changes += applied.iter().map(|w| w.changes.len()).sum::<usize>();
        Ok(applied)
    }

    /// The read half of a chase step: violation detection, queue maintenance
    /// and repair planning over the writes `applied` by [`Self::begin_step`].
    /// Only needs a shared database borrow (fresh nulls come from an atomic
    /// counter). In a concurrent setting other updates may commit writes
    /// between the two halves; that is exactly the premature-read situation
    /// the optimistic scheduler already handles — every read this half
    /// performs is returned in the [`StepOutcome`] for logging, and a later
    /// conflict check aborts this update if one of those reads was premature.
    pub fn finish_step<D: ChaseData>(
        &mut self,
        db: &D,
        mappings: &MappingSet,
        applied: Vec<AppliedWrite>,
    ) -> Result<StepOutcome, ChaseError> {
        let mut reads: Vec<ReadQuery> = Vec::new();
        let mut new_violations = 0usize;

        // 2. Queue maintenance + violation queries. The incremental mode
        //    re-checks only violations indexed under a relation whose write
        //    epoch moved (its own writes this step, or anything other updates
        //    did since its previous step); the reference mode re-checks the
        //    whole queue after detection, like the pre-optimisation chase.
        {
            let snap = db.view(self.id);
            if self.mode == ChaseMode::Incremental {
                self.recheck_touched(db, &snap, mappings);
            }
            for aw in &applied {
                for change in &aw.changes {
                    let (queries, violations) = violations_from_change(&snap, mappings, change);
                    reads.extend(queries.into_iter().map(ReadQuery::Violation));
                    for v in violations {
                        if self.queued_set.contains(&v) {
                            continue;
                        }
                        new_violations += 1;
                        self.stats.violations_seen += 1;
                        self.enqueue(db, mappings, v);
                    }
                }
            }
            if self.mode == ChaseMode::FullRecheck {
                // Remove violations the writes have (directly or indirectly)
                // repaired, and violations whose witnesses vanished.
                self.recheck_everything(&snap, mappings);
            }
        }

        // 3. Pick the next violation, preferring deterministically repairable
        //    ones; generate its corrective writes or a frontier request. The
        //    incremental mode reuses each violation's memoised plan while the
        //    write epochs of its read relations are unchanged — the plan (and
        //    its logged reads) can only be stale if one of those relations
        //    was written.
        let mut chosen: Option<(u64, RepairPlan)> = None;
        let seqs: Vec<u64> = self.viol_queue.keys().copied().collect();
        for seq in seqs {
            let plan = match self.mode {
                ChaseMode::FullRecheck => {
                    let violation =
                        self.viol_queue.get(&seq).expect("seq collected above").violation.clone();
                    let (plan, plan_reads) = self.plan_repair(db, mappings, &violation);
                    reads.extend(plan_reads);
                    plan
                }
                ChaseMode::Incremental => {
                    // Epoch validation compares in place; the epoch vector is
                    // only materialised when a fresh memo is stored.
                    let entry = self.viol_queue.get(&seq).expect("seq collected above");
                    let memo = entry.plan.as_ref().filter(|m| {
                        entry
                            .read_relations
                            .iter()
                            .zip(m.epochs.iter())
                            .all(|(r, e)| db.relation_epoch(*r) == *e)
                    });
                    match memo {
                        Some(memo) => memo.plan.clone(),
                        None => {
                            let violation = entry.violation.clone();
                            let current: Vec<u64> = entry
                                .read_relations
                                .iter()
                                .map(|r| db.relation_epoch(*r))
                                .collect();
                            let (plan, plan_reads) = self.plan_repair(db, mappings, &violation);
                            reads.extend(plan_reads);
                            let entry = self.viol_queue.get_mut(&seq).expect("seq collected above");
                            entry.plan = Some(MemoisedPlan { plan: plan.clone(), epochs: current });
                            plan
                        }
                    }
                }
            };
            let deterministic = matches!(plan, RepairPlan::Deterministic(_));
            if chosen.is_none() || deterministic {
                chosen = Some((seq, plan));
            }
            if deterministic {
                break;
            }
        }

        let mut frontier_request = None;
        match chosen {
            Some((seq, RepairPlan::Deterministic(corrective))) => {
                self.remove_entry(seq);
                self.pending_writes = corrective;
                self.state = UpdateState::Ready;
            }
            Some((seq, RepairPlan::Frontier(request))) => {
                self.remove_entry(seq);
                frontier_request = Some(request.clone());
                self.pending_frontier = Some(request);
                self.state = UpdateState::AwaitingFrontier;
            }
            None => {
                // No live violations remain.
                self.state = if self.pending_writes.is_empty() {
                    UpdateState::Terminated
                } else {
                    UpdateState::Ready
                };
            }
        }

        Ok(StepOutcome {
            update: self.id,
            writes: applied,
            reads,
            new_violations,
            frontier_request,
            state: self.state,
        })
    }

    /// Supplies the user's decision for the pending frontier request. The
    /// resulting corrective writes become the next step's write set; the
    /// returned correction queries ([`ReadQuery::NullOccurrences`]) must be
    /// logged by the concurrency layer (Section 5 explains they are checked
    /// against writes that occur logically after them).
    pub fn resolve_frontier(
        &mut self,
        mappings: &MappingSet,
        decision: FrontierDecision,
    ) -> Result<Vec<ReadQuery>, ChaseError> {
        let Some(request) = self.pending_frontier.take() else {
            return Err(ChaseError::NoPendingFrontier(self.id));
        };
        let result = match (&request, decision) {
            (FrontierRequest::Positive(pf), FrontierDecision::Positive(actions)) => {
                self.apply_positive(pf, &actions)
            }
            (FrontierRequest::Negative(nf), FrontierDecision::Negative(delete)) => {
                self.apply_negative(mappings, nf, &delete)
            }
            _ => Err(ChaseError::InvalidDecision(
                "decision kind does not match the pending frontier request".into(),
            )),
        };
        match result {
            Ok(reads) => {
                self.stats.frontier_ops += 1;
                self.state = UpdateState::Ready;
                Ok(reads)
            }
            Err(e) => {
                // Restore the request so the user can retry.
                self.pending_frontier = Some(request);
                Err(e)
            }
        }
    }

    fn apply_positive(
        &mut self,
        pf: &PositiveFrontier,
        actions: &[PositiveAction],
    ) -> Result<Vec<ReadQuery>, ChaseError> {
        if actions.len() != pf.tuples.len() {
            return Err(ChaseError::InvalidDecision(format!(
                "expected {} actions, got {}",
                pf.tuples.len(),
                actions.len()
            )));
        }
        // Phase 1: collect the unification substitution. Unifications are
        // processed in tuple order; frontier tuples in the same group share
        // freshly generated nulls, so a later unification can contradict an
        // earlier one. Such a contradictory unification degrades to an
        // expansion (the generated tuple is inserted, with the substitution
        // collected so far applied), which still repairs the violation.
        let mut subst: BTreeMap<NullId, Value> = BTreeMap::new();
        let mut effective: Vec<PositiveAction> = Vec::with_capacity(actions.len());
        for (tuple, action) in pf.tuples.iter().zip(actions.iter()) {
            if let PositiveAction::Unify { with } = action {
                let Some((_, target)) = tuple.candidates.iter().find(|(id, _)| id == with) else {
                    return Err(ChaseError::InvalidDecision(format!(
                        "tuple {with} is not a unification candidate"
                    )));
                };
                let Some(map) = specialization(&tuple.values, target) else {
                    return Err(ChaseError::InvalidDecision(format!(
                        "tuple {with} is not more specific than the frontier tuple"
                    )));
                };
                let conflicts = map
                    .iter()
                    .any(|(null, value)| subst.get(null).is_some_and(|existing| existing != value));
                if conflicts {
                    effective.push(PositiveAction::Expand);
                    continue;
                }
                for (null, value) in map {
                    subst.insert(null, value);
                }
            }
            effective.push(action.clone());
        }
        let actions = &effective;
        // Phase 2: correction queries and writes.
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        let subst_map: HashMap<NullId, Value> = subst.iter().map(|(k, v)| (*k, *v)).collect();
        for (null, value) in &subst {
            let fresh = pf.tuples.iter().any(|t| t.fresh_nulls.contains(null));
            if !fresh {
                // The null occurs elsewhere in the database: the chase must
                // find and rewrite every occurrence.
                reads.push(ReadQuery::NullOccurrences { null: *null });
            }
            if *value != Value::Null(*null) {
                writes.push(Write::NullReplace { null: *null, replacement: *value });
            }
        }
        for (tuple, action) in pf.tuples.iter().zip(actions.iter()) {
            if matches!(action, PositiveAction::Expand) {
                let (values, _) = substitute_nulls(&tuple.values, &subst_map);
                writes.push(Write::Insert { relation: tuple.relation, values });
            }
        }
        self.pending_writes = writes;
        Ok(reads)
    }

    fn apply_negative(
        &mut self,
        mappings: &MappingSet,
        nf: &NegativeFrontier,
        delete: &[TupleId],
    ) -> Result<Vec<ReadQuery>, ChaseError> {
        if delete.is_empty() {
            return Err(ChaseError::InvalidDecision(
                "at least one negative frontier tuple must be deleted".into(),
            ));
        }
        let tgd = mappings.get(nf.mapping);
        let mut writes = Vec::new();
        let mut seen = Vec::new();
        for id in delete {
            if seen.contains(id) {
                continue;
            }
            seen.push(*id);
            let Some((atom_index, _, _)) = nf.candidates.iter().find(|(_, tid, _)| tid == id)
            else {
                return Err(ChaseError::InvalidDecision(format!(
                    "tuple {id} is not a deletion candidate"
                )));
            };
            let relation = tgd.lhs[*atom_index].relation;
            writes.push(Write::Delete { relation, tuple: *id });
        }
        self.pending_writes = writes;
        Ok(Vec::new())
    }

    /// Computes the repair plan for one violation: either a deterministic set
    /// of corrective writes or a frontier request, together with the
    /// correction queries that were needed to decide.
    fn plan_repair<D: ChaseData>(
        &self,
        db: &D,
        mappings: &MappingSet,
        violation: &Violation,
    ) -> (RepairPlan, Vec<ReadQuery>) {
        match violation.kind {
            ViolationKind::Lhs => self.plan_forward(db, mappings, violation),
            ViolationKind::Rhs => (self.plan_backward(db, mappings, violation), Vec::new()),
        }
    }

    /// Forward repair (Section 2.2): generate the missing RHS tuples; tuples
    /// with an existing, more specific counterpart become positive frontier
    /// tuples.
    fn plan_forward<D: ChaseData>(
        &self,
        db: &D,
        mappings: &MappingSet,
        violation: &Violation,
    ) -> (RepairPlan, Vec<ReadQuery>) {
        let tgd = mappings.get(violation.mapping);
        let frontier_bindings = violation.frontier_bindings(tgd);

        // Generate the RHS tuples, memoising fresh nulls across atoms so that
        // shared existential variables receive the same labeled null.
        let mut fresh_for_var: BTreeMap<youtopia_storage::Symbol, Value> = BTreeMap::new();
        let mut fresh_nulls: Vec<NullId> = Vec::new();
        let mut generated: Vec<(RelationId, Vec<Value>)> = Vec::new();
        for atom in &tgd.rhs {
            let values = atom.instantiate(&frontier_bindings, |var| {
                *fresh_for_var.entry(var).or_insert_with(|| {
                    let null = db.fresh_null();
                    fresh_nulls.push(null);
                    Value::Null(null)
                })
            });
            generated.push((atom.relation, values));
        }

        // Examine each generated tuple against the database.
        let snap = db.view(self.id);
        let mut reads = Vec::new();
        let mut tuples = Vec::new();
        let mut writes = Vec::new();
        let mut deterministic = true;
        for (relation, values) in generated {
            let data: TupleData = values.clone().into();
            reads.push(ReadQuery::MoreSpecific { relation, pattern: data.clone() });
            let candidates = more_specific_tuples(&snap, relation, &data);
            // A ground tuple that already exists needs no action at all.
            let is_ground = data.iter().all(Value::is_const);
            if is_ground && candidates.iter().any(|(_, d)| d == &data) {
                continue;
            }
            if candidates.is_empty() {
                writes.push(Write::Insert { relation, values: values.clone() });
            } else {
                deterministic = false;
            }
            let own_fresh = youtopia_storage::nulls_of(&data)
                .into_iter()
                .filter(|n| fresh_nulls.contains(n))
                .collect();
            tuples.push(FrontierTuple {
                relation,
                values: data,
                fresh_nulls: own_fresh,
                candidates,
            });
        }

        if deterministic {
            (RepairPlan::Deterministic(writes), reads)
        } else {
            (
                RepairPlan::Frontier(FrontierRequest::Positive(PositiveFrontier {
                    mapping: violation.mapping,
                    violation: violation.clone(),
                    tuples,
                })),
                reads,
            )
        }
    }

    /// Backward repair (Section 2.3): delete witness tuples. Deterministic
    /// only when there is a single candidate.
    fn plan_backward<D: ChaseData>(
        &self,
        db: &D,
        mappings: &MappingSet,
        violation: &Violation,
    ) -> RepairPlan {
        let tgd = mappings.get(violation.mapping);
        let mut candidates: Vec<(usize, TupleId, TupleData)> = Vec::new();
        for (idx, (atom, tid)) in tgd.lhs.iter().zip(violation.witness.iter()).enumerate() {
            if candidates.iter().any(|(_, existing, _)| existing == tid) {
                continue; // self-joins repeat the same tuple
            }
            if let Some(data) = db.visible_tuple(atom.relation, *tid, self.id) {
                candidates.push((idx, *tid, data));
            }
        }
        if candidates.len() == 1 {
            let (idx, tid, _) = &candidates[0];
            RepairPlan::Deterministic(vec![Write::Delete {
                relation: tgd.lhs[*idx].relation,
                tuple: *tid,
            }])
        } else {
            RepairPlan::Frontier(FrontierRequest::Negative(NegativeFrontier {
                mapping: violation.mapping,
                violation: violation.clone(),
                candidates,
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_mappings::MappingSet;
    use youtopia_storage::Database;

    fn travel() -> (Database, MappingSet) {
        let mut db = Database::new();
        db.add_relation("A", ["location", "name"]).unwrap();
        db.add_relation("T", ["attraction", "company", "tour_start"]).unwrap();
        db.add_relation("R", ["company", "attraction", "review"]).unwrap();
        let mut set = MappingSet::new();
        set.add_parsed(db.catalog(), "sigma3: A(l, n) & T(n, c, cs) -> exists r. R(c, n, r)")
            .unwrap();
        db.insert_by_name("A", &["Niagara Falls", "Niagara Falls"], UpdateId(0));
        (db, set)
    }

    #[test]
    fn example_1_1_forward_chase_inserts_a_review_placeholder() {
        // Inserting T(Niagara Falls, ABC Tours, …) causes σ3 to fire and the
        // chase to insert R(ABC Tours, Niagara Falls, x) with a fresh null.
        let (mut db, set) = travel();
        let t = db.relation_id("T").unwrap();
        let r = db.relation_id("R").unwrap();
        let mut exec = UpdateExecution::new(
            UpdateId(1),
            InitialOp::Insert {
                relation: t,
                values: vec![
                    Value::constant("Niagara Falls"),
                    Value::constant("ABC Tours"),
                    Value::constant("Toronto"),
                ],
            },
        );
        assert!(exec.initial().is_positive());

        // Step 1: performs the insert, discovers the violation, schedules the
        // corrective insert (R is empty so there is no more specific tuple).
        let out = exec.step(&mut db, &set).unwrap();
        assert_eq!(out.state, UpdateState::Ready);
        assert_eq!(out.new_violations, 1);
        assert!(out.frontier_request.is_none());
        assert!(out.reads.iter().any(|q| q.is_violation_query()));
        assert!(out.reads.iter().any(|q| matches!(q, ReadQuery::MoreSpecific { .. })));

        // Step 2: performs the corrective insert; no further violations remain
        // and the update terminates.
        let out = exec.step(&mut db, &set).unwrap();
        assert_eq!(out.writes.len(), 1);
        assert_eq!(out.state, UpdateState::Terminated);
        assert!(exec.is_terminated());

        let reviews = db.scan(r, UpdateId::OMNISCIENT);
        assert_eq!(reviews.len(), 1);
        let review = &reviews[0].1;
        assert_eq!(review[0], Value::constant("ABC Tours"));
        assert_eq!(review[1], Value::constant("Niagara Falls"));
        assert!(review[2].is_null(), "the review is an unknown labeled null");
        assert_eq!(exec.stats().steps, 2);
    }

    #[test]
    fn forward_chase_blocks_on_more_specific_tuples_and_unifies() {
        // A second tour of the same attraction by the same company: the
        // generated review tuple has a more specific counterpart, so the chase
        // stops and asks for a frontier operation.
        let (mut db, set) = travel();
        let t = db.relation_id("T").unwrap();
        let r = db.relation_id("R").unwrap();
        db.insert_by_name("T", &["Niagara Falls", "ABC Tours", "Toronto"], UpdateId(0));
        db.insert_by_name("R", &["ABC Tours", "Niagara Falls", "Great!"], UpdateId(0));

        // A new tour row for the same (attraction, company) pair but a
        // different starting city — σ3's RHS is already satisfied, so no
        // violation occurs. Use a *different* company to create a violation
        // whose generated tuple has a more-specific counterpart only after we
        // insert such a row. Instead, replicate the paper's S/C scenario:
        // delete nothing, and make the generated tuple non-ground by using a
        // null company.
        let x = db.fresh_null();
        let mut exec = UpdateExecution::new(
            UpdateId(1),
            InitialOp::Insert {
                relation: t,
                values: vec![
                    Value::constant("Niagara Falls"),
                    Value::Null(x),
                    Value::constant("Albany"),
                ],
            },
        );
        let out = exec.step(&mut db, &set).unwrap();
        // Generated tuple R(x, Niagara Falls, fresh) has the existing review
        // R(ABC Tours, Niagara Falls, Great!) as a more specific candidate.
        assert_eq!(out.state, UpdateState::AwaitingFrontier);
        let request = out.frontier_request.clone().unwrap();
        let FrontierRequest::Positive(pf) = &request else { panic!("expected positive frontier") };
        assert_eq!(pf.tuples.len(), 1);
        assert_eq!(pf.tuples[0].candidates.len(), 1);
        assert!(exec.pending_frontier().is_some());

        // Stepping while blocked is an error.
        assert!(matches!(exec.step(&mut db, &set), Err(ChaseError::NotReady(_))));

        // Unify with the existing review: x is replaced by "ABC Tours".
        let target = pf.tuples[0].candidates[0].0;
        let reads = exec
            .resolve_frontier(
                &set,
                FrontierDecision::Positive(vec![PositiveAction::Unify { with: target }]),
            )
            .unwrap();
        // x came from the witness (it is not fresh), so a null-occurrence
        // correction query is posed.
        assert!(reads.iter().any(|q| matches!(q, ReadQuery::NullOccurrences { .. })));

        // The unification write rewrites the tour; chase terminates.
        let out = exec.step(&mut db, &set).unwrap();
        assert!(out.writes.iter().any(|w| matches!(w.write, Write::NullReplace { .. })));
        while !exec.is_terminated() {
            exec.step(&mut db, &set).unwrap();
        }
        // No new review row was created; the tour now names ABC Tours.
        assert_eq!(db.scan(r, UpdateId::OMNISCIENT).len(), 1);
        let tours = db.scan(t, UpdateId::OMNISCIENT);
        assert!(tours.iter().all(|(_, d)| d[1] == Value::constant("ABC Tours") || d[1].is_const()));
        assert_eq!(exec.stats().frontier_ops, 1);
    }

    #[test]
    fn expand_inserts_the_generated_tuple() {
        let (mut db, set) = travel();
        let t = db.relation_id("T").unwrap();
        let r = db.relation_id("R").unwrap();
        db.insert_by_name("R", &["Old Co", "Niagara Falls", "fine"], UpdateId(0));
        // Tour by an unknown company: generated review R(x, Niagara Falls, fresh)
        // has the existing review as a more-specific candidate.
        let x = db.fresh_null();
        let mut exec = UpdateExecution::new(
            UpdateId(1),
            InitialOp::Insert {
                relation: t,
                values: vec![
                    Value::constant("Niagara Falls"),
                    Value::Null(x),
                    Value::constant("Albany"),
                ],
            },
        );
        let out = exec.step(&mut db, &set).unwrap();
        let FrontierRequest::Positive(pf) = out.frontier_request.unwrap() else { panic!() };
        exec.resolve_frontier(&set, FrontierDecision::expand_all(&pf)).unwrap();
        while !exec.is_terminated() {
            exec.step(&mut db, &set).unwrap();
        }
        // Expansion inserted a brand-new review row.
        assert_eq!(db.scan(r, UpdateId::OMNISCIENT).len(), 2);
    }

    #[test]
    fn example_2_3_backward_chase_requests_a_negative_frontier_operation() {
        let (mut db, set) = travel();
        let r = db.relation_id("R").unwrap();
        let a = db.relation_id("A").unwrap();
        let t = db.relation_id("T").unwrap();
        db.insert_by_name("A", &["Geneva", "Geneva Winery"], UpdateId(0));
        db.insert_by_name("T", &["Geneva Winery", "XYZ", "Syracuse"], UpdateId(0));
        let review = db.insert_by_name("R", &["XYZ", "Geneva Winery", "Great!"], UpdateId(0));

        let mut exec =
            UpdateExecution::new(UpdateId(1), InitialOp::Delete { relation: r, tuple: review });
        assert!(!exec.initial().is_positive());
        let out = exec.step(&mut db, &set).unwrap();
        assert_eq!(out.state, UpdateState::AwaitingFrontier);
        let FrontierRequest::Negative(nf) = out.frontier_request.unwrap() else {
            panic!("expected negative frontier")
        };
        assert_eq!(nf.candidates.len(), 2, "either A or T may be deleted");

        // Delete the tour (as in step 4 of Example 3.1).
        let tour = nf
            .candidates
            .iter()
            .find(|(_, _, data)| data[0] == Value::constant("Geneva Winery") && data.len() == 3)
            .map(|(_, id, _)| *id)
            .unwrap();
        exec.resolve_frontier(&set, FrontierDecision::Negative(vec![tour])).unwrap();
        while !exec.is_terminated() {
            exec.step(&mut db, &set).unwrap();
        }
        assert_eq!(db.scan(t, UpdateId::OMNISCIENT).len(), 0);
        assert_eq!(db.scan(a, UpdateId::OMNISCIENT).len(), 2, "attractions survive");
        assert_eq!(exec.queued_violations(), 0);
    }

    #[test]
    fn backward_chase_with_single_witness_tuple_is_deterministic() {
        // Mapping with a single LHS atom: deleting the RHS match deletes the
        // witness without asking the user.
        let mut db = Database::new();
        db.add_relation("P", ["a"]).unwrap();
        db.add_relation("Q", ["a"]).unwrap();
        let mut set = MappingSet::new();
        set.add_parsed(db.catalog(), "copy: P(x) -> Q(x)").unwrap();
        let p = db.relation_id("P").unwrap();
        let q = db.relation_id("Q").unwrap();
        db.insert_by_name("P", &["v"], UpdateId(0));
        let qt = db.insert_by_name("Q", &["v"], UpdateId(0));

        let mut exec =
            UpdateExecution::new(UpdateId(1), InitialOp::Delete { relation: q, tuple: qt });
        let mut saw_frontier = false;
        while !exec.is_terminated() {
            let out = exec.step(&mut db, &set).unwrap();
            saw_frontier |= out.frontier_request.is_some();
        }
        assert!(!saw_frontier, "single-witness deletions cascade deterministically");
        assert_eq!(db.scan(p, UpdateId::OMNISCIENT).len(), 0);
    }

    #[test]
    fn invalid_decisions_are_rejected_and_request_is_preserved() {
        let (mut db, set) = travel();
        let t = db.relation_id("T").unwrap();
        db.insert_by_name("R", &["Old Co", "Niagara Falls", "fine"], UpdateId(0));
        let x = db.fresh_null();
        let mut exec = UpdateExecution::new(
            UpdateId(1),
            InitialOp::Insert {
                relation: t,
                values: vec![
                    Value::constant("Niagara Falls"),
                    Value::Null(x),
                    Value::constant("Albany"),
                ],
            },
        );
        let out = exec.step(&mut db, &set).unwrap();
        assert!(out.frontier_request.is_some());

        // Wrong decision kind.
        let err = exec.resolve_frontier(&set, FrontierDecision::Negative(vec![TupleId(0)]));
        assert!(matches!(err, Err(ChaseError::InvalidDecision(_))));
        // Wrong number of actions.
        let err = exec.resolve_frontier(&set, FrontierDecision::Positive(vec![]));
        assert!(matches!(err, Err(ChaseError::InvalidDecision(_))));
        // Unify with a non-candidate.
        let err = exec.resolve_frontier(
            &set,
            FrontierDecision::Positive(vec![PositiveAction::Unify { with: TupleId(9999) }]),
        );
        assert!(matches!(err, Err(ChaseError::InvalidDecision(_))));
        // The request survives invalid decisions and a valid one still works.
        assert!(exec.pending_frontier().is_some());
        let FrontierRequest::Positive(pf) = exec.pending_frontier().unwrap().clone() else {
            panic!()
        };
        exec.resolve_frontier(&set, FrontierDecision::expand_all(&pf)).unwrap();
        assert!(exec.pending_frontier().is_none());
    }

    #[test]
    fn resolve_without_pending_request_fails() {
        let (mut db, set) = travel();
        let t = db.relation_id("T").unwrap();
        let mut exec = UpdateExecution::new(
            UpdateId(1),
            InitialOp::Insert {
                relation: t,
                values: vec![
                    Value::constant("Niagara Falls"),
                    Value::constant("ABC"),
                    Value::constant("Toronto"),
                ],
            },
        );
        let _ = exec.step(&mut db, &set).unwrap();
        let err = exec.resolve_frontier(&set, FrontierDecision::Positive(vec![]));
        assert!(matches!(err, Err(ChaseError::NoPendingFrontier(_))));
    }

    #[test]
    fn reset_for_restart_reruns_the_initial_operation() {
        let (mut db, set) = travel();
        let t = db.relation_id("T").unwrap();
        let mut exec = UpdateExecution::new(
            UpdateId(2),
            InitialOp::Insert {
                relation: t,
                values: vec![
                    Value::constant("Niagara Falls"),
                    Value::constant("ABC"),
                    Value::constant("Toronto"),
                ],
            },
        );
        while !exec.is_terminated() {
            exec.step(&mut db, &set).unwrap();
        }
        // Abort: roll back the writes and reset the execution.
        db.rollback_update(UpdateId(2));
        exec.reset_for_restart();
        assert_eq!(exec.state(), UpdateState::Ready);
        assert_eq!(exec.stats().restarts, 1);
        while !exec.is_terminated() {
            exec.step(&mut db, &set).unwrap();
        }
        let r = db.relation_id("R").unwrap();
        assert_eq!(db.scan(r, UpdateId::OMNISCIENT).len(), 1);
        assert_eq!(db.scan(t, UpdateId::OMNISCIENT).len(), 1);
    }

    /// Hub(x) → Spokeᵢ(x) fan-out: one insert discovers `spokes` violations
    /// at once and each subsequent step deterministically repairs one, so the
    /// queue stays long across many steps.
    fn hub_spokes(spokes: usize) -> (Database, MappingSet) {
        let mut db = Database::new();
        db.add_relation("Hub", ["k"]).unwrap();
        let mut rules = String::new();
        for i in 0..spokes {
            db.add_relation(format!("Spoke{i}"), ["k"]).unwrap();
            rules.push_str(&format!("m{i}: Hub(x) -> Spoke{i}(x)\n"));
        }
        let mut set = MappingSet::new();
        set.add_parsed_many(db.catalog(), &rules).unwrap();
        (db, set)
    }

    #[test]
    fn incremental_queue_matches_the_full_recheck_reference() {
        // The copy mappings have no existential variables, so both modes are
        // byte-identical step for step — compare queues directly.
        let (db, set) = hub_spokes(6);
        let hub = db.relation_id("Hub").unwrap();
        let op = InitialOp::Insert { relation: hub, values: vec![Value::constant("a")] };
        let mut db_inc = db.clone();
        let mut db_full = db;
        let mut inc = UpdateExecution::new(UpdateId(1), op.clone());
        let mut full = UpdateExecution::with_mode(UpdateId(1), op, ChaseMode::FullRecheck);
        assert_eq!(inc.mode(), ChaseMode::Incremental);
        assert_eq!(full.mode(), ChaseMode::FullRecheck);

        let mut steps = 0usize;
        while !inc.is_terminated() {
            inc.step(&mut db_inc, &set).unwrap();
            full.step(&mut db_full, &set).unwrap();
            steps += 1;
            assert_eq!(
                inc.queued_violation_list(),
                full.queued_violation_list(),
                "after step {steps} both modes must queue the same violations"
            );
            // Invariant of the delta-driven queue: everything queued is still
            // violated (exactly what the reference full recheck retains).
            assert_eq!(
                inc.queued_violation_list(),
                inc.recheck_all_violations(&db_inc, &set),
                "after step {steps} no stale violation may linger"
            );
        }
        assert!(full.is_terminated());
        assert!(steps > 6, "each spoke repair is its own step");
        for i in 0..6 {
            let spoke = db_inc.relation_id(&format!("Spoke{i}")).unwrap();
            assert_eq!(db_inc.visible_count(spoke, UpdateId::OMNISCIENT), 1);
        }
    }

    #[test]
    fn rediscovered_violations_are_not_double_counted() {
        // σa: A(x) → B(x) ∧ C(x); σb: B(x) ∧ C(y) → D(x). Repairing σa writes
        // B(a) and C(a) in one step; both changes re-discover the *same* σb
        // violation, which must be enqueued (and counted) once.
        let mut db = Database::new();
        db.add_relation("A", ["k"]).unwrap();
        db.add_relation("B", ["k"]).unwrap();
        db.add_relation("C", ["k"]).unwrap();
        db.add_relation("D", ["k"]).unwrap();
        let mut set = MappingSet::new();
        set.add_parsed_many(
            db.catalog(),
            "
            sa: A(x) -> B(x) & C(x)
            sb: B(x) & C(y) -> D(x)
            ",
        )
        .unwrap();
        let a = db.relation_id("A").unwrap();
        let mut exec = UpdateExecution::new(
            UpdateId(1),
            InitialOp::Insert { relation: a, values: vec![Value::constant("a")] },
        );
        let out = exec.step(&mut db, &set).unwrap();
        assert_eq!(out.new_violations, 1, "σa fires");
        // Step 2 inserts B(a) and C(a); the σb violation is seeded by both
        // changes but counted once.
        let out = exec.step(&mut db, &set).unwrap();
        assert_eq!(out.writes.len(), 2);
        assert_eq!(out.new_violations, 1, "one σb violation despite two seeding changes");
        assert_eq!(exec.queued_violations(), 0, "σb was chosen for repair immediately");
        while !exec.is_terminated() {
            exec.step(&mut db, &set).unwrap();
        }
        let d = db.relation_id("D").unwrap();
        assert_eq!(db.visible_count(d, UpdateId::OMNISCIENT), 1);
        assert_eq!(exec.stats().violations_seen, 2);
    }

    #[test]
    fn deleting_a_tuple_nobody_depends_on_terminates_immediately() {
        let (mut db, set) = travel();
        let a = db.relation_id("A").unwrap();
        let lonely = db.insert_by_name("A", &["Rome", "Colosseum"], UpdateId(0));
        let mut exec =
            UpdateExecution::new(UpdateId(1), InitialOp::Delete { relation: a, tuple: lonely });
        let out = exec.step(&mut db, &set).unwrap();
        assert_eq!(out.new_violations, 0);
        assert_eq!(out.state, UpdateState::Terminated);
    }
}
