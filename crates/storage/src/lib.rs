//! # youtopia-storage
//!
//! The relational storage substrate of the Youtopia reproduction
//! (*Cooperative Update Exchange in the Youtopia System*, VLDB 2009).
//!
//! The crate provides:
//!
//! * [`Value`]s that are either interned constants or **labeled nulls**
//!   ([`NullId`]) — the incomplete-information values central to the paper;
//! * the **specificity relation** on tuples (Definition 2.4), in [`mod@tuple`];
//! * a multiversion, in-memory [`Database`] whose tuple versions are stamped
//!   with update priority numbers and read through visibility-filtered
//!   [`Snapshot`]s (Section 4.1);
//! * the three write kinds of the paper — insert, delete, and global
//!   null-replacement ([`Write`]);
//! * a conjunctive-query engine ([`query`]) used for violation and correction
//!   queries, plus [`OverlaySnapshot`] for *what-if* evaluation of a single
//!   write (used by conflict detection and the `PRECISE` tracker);
//! * a speculative write overlay ([`SpeculativeDb`]) that runs a whole chase
//!   step against a read-locked base and reduces its validity to an
//!   epoch-compare [`SpeculationReadSet`] (used by the deterministic
//!   scheduler's speculative mode).
//!
//! Higher layers: `youtopia-mappings` (tgds and violations), `youtopia-core`
//! (the cooperative chase) and `youtopia-concurrency` (optimistic concurrency
//! control).
//!
//! ```
//! use youtopia_storage::{Database, UpdateId, Value, Write};
//!
//! let mut db = Database::new();
//! let city = db.add_relation("City", ["city"]).unwrap();
//! db.apply(
//!     &Write::Insert { relation: city, values: vec![Value::constant("Ithaca")] },
//!     UpdateId(1),
//! )
//! .unwrap();
//! assert_eq!(db.visible_count(city, UpdateId::OMNISCIENT), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod database;
pub mod error;
pub mod feed;
pub mod query;
pub mod relation;
pub mod schema;
pub mod snapshot;
pub mod speculate;
pub mod store;
pub mod tuple;
pub mod value;
pub mod version;
pub mod wal;

pub use database::Database;
pub use error::StorageError;
pub use feed::ViolationFeed;
pub use query::{evaluate, restrict, satisfiable, variables_of, Atom, Bindings, QueryMatch, Term};
pub use relation::RelationStore;
pub use schema::{Catalog, RelationId, RelationSchema};
pub use snapshot::{DataView, OverlaySnapshot, Snapshot, TupleOverride};
pub use speculate::{ChaseData, SpeculationReadSet, SpeculativeDb, SpeculativeView};
pub use store::{VersionStore, DELTA_BACKLOG_CAP};
pub use tuple::{
    contains_null, is_more_specific, nulls_of, specialization, specificity_equivalent,
    substitute_nulls, Tuple, TupleData, TupleId,
};
pub use value::{NullId, Symbol, Value};
pub use version::{AppliedWrite, TupleChange, TupleVersion, UpdateId, VersionChain, Write};
pub use wal::{
    crc32, deserialize_database, read_wal, serialize_database, write_file_atomic, ByteReader,
    ByteWriter, Fnv64, WalContents, WalError, WalWriter,
};
