//! Report rendering: text tables and CSV series matching the panels of
//! Figures 3 and 4.

use youtopia_concurrency::TrackerKind;

use crate::experiment::ExperimentResults;

/// Renders the three panels of a figure (aborts, cascading abort requests,
/// slowdown of `PRECISE`) as aligned text tables.
pub fn render_figure(results: &ExperimentResults, figure_name: &str) -> String {
    let mut out = String::new();
    let trackers = [TrackerKind::Coarse, TrackerKind::Precise, TrackerKind::Naive];
    out.push_str(&format!(
        "{figure_name}: {} workload ({} updates, {} runs per point, {} initial tuples)\n",
        results.workload,
        results.config.workload_updates,
        results.config.runs,
        results.initial_data.total_tuples,
    ));
    out.push_str(&format!("experiment wall time: {:.1}s\n\n", results.total_seconds));

    // Panel 1: number of aborts.
    out.push_str(&panel(results, "# Aborts", &trackers, |p| p.avg.aborts));
    // Panel 2: number of cascading abort requests.
    out.push_str(&panel(results, "# Cascading Abort Requests", &trackers, |p| {
        p.avg.cascading_abort_requests
    }));
    // Panel 3: slowdown of PRECISE over COARSE.
    out.push_str(&slowdown_panel(results));
    out
}

fn panel(
    results: &ExperimentResults,
    title: &str,
    trackers: &[TrackerKind],
    metric: impl Fn(&crate::experiment::ExperimentPoint) -> f64,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!("{:>10}", "#mappings"));
    for t in trackers {
        out.push_str(&format!("{:>12}", t.name()));
    }
    out.push('\n');
    for &m in &results.config.mapping_counts {
        out.push_str(&format!("{m:>10}"));
        for &t in trackers {
            match results.point(m, t) {
                Some(p) => out.push_str(&format!("{:>12.1}", metric(p))),
                None => out.push_str(&format!("{:>12}", "-")),
            }
        }
        out.push('\n');
    }
    out.push('\n');
    out
}

fn slowdown_panel(results: &ExperimentResults) -> String {
    let mut out = String::new();
    out.push_str("Slowdown of PRECISE (per-update time, PRECISE / COARSE)\n");
    out.push_str(&format!("{:>10}{:>12}\n", "#mappings", "slowdown"));
    for &m in &results.config.mapping_counts {
        match results.precise_slowdown(m) {
            Some(s) => out.push_str(&format!("{m:>10}{s:>12.2}\n")),
            None => out.push_str(&format!("{m:>10}{:>12}\n", "-")),
        }
    }
    out.push('\n');
    out
}

/// Renders the results as CSV, one row per (mapping count, tracker):
/// `mappings,tracker,aborts,cascading_abort_requests,direct_conflicts,per_update_time_secs,steps,frontier_ops`.
pub fn to_csv(results: &ExperimentResults) -> String {
    let mut out = String::from(
        "mappings,tracker,aborts,cascading_abort_requests,direct_conflicts,per_update_time_secs,steps,frontier_ops\n",
    );
    for p in &results.points {
        out.push_str(&format!(
            "{},{},{:.3},{:.3},{:.3},{:.6},{:.1},{:.1}\n",
            p.mappings,
            p.tracker.name(),
            p.avg.aborts,
            p.avg.cascading_abort_requests,
            p.avg.direct_conflict_requests,
            p.avg.per_update_time_secs,
            p.avg.steps,
            p.avg.frontier_ops,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExperimentConfig, WorkloadKind};
    use crate::experiment::run_experiment;
    use youtopia_concurrency::TrackerKind;

    fn tiny_results() -> ExperimentResults {
        let mut config = ExperimentConfig::tiny();
        config.runs = 1;
        run_experiment(
            &config,
            WorkloadKind::AllInserts,
            &[TrackerKind::Coarse, TrackerKind::Precise],
            None,
        )
        .unwrap()
    }

    #[test]
    fn figure_rendering_contains_all_panels_and_trackers() {
        let results = tiny_results();
        let rendered = render_figure(&results, "Figure 3 (reduced scale)");
        assert!(rendered.contains("# Aborts"));
        assert!(rendered.contains("# Cascading Abort Requests"));
        assert!(rendered.contains("Slowdown of PRECISE"));
        assert!(rendered.contains("COARSE"));
        assert!(rendered.contains("PRECISE"));
        assert!(rendered.contains("NAIVE"));
        for m in &results.config.mapping_counts {
            assert!(rendered.contains(&m.to_string()));
        }
    }

    #[test]
    fn csv_has_one_row_per_point_plus_header() {
        let results = tiny_results();
        let csv = to_csv(&results);
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), results.points.len() + 1);
        assert!(lines[0].starts_with("mappings,tracker"));
        assert!(lines[1].contains("COARSE") || lines[1].contains("PRECISE"));
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), 8);
        }
    }

    #[test]
    fn missing_trackers_render_as_dashes() {
        let results = tiny_results();
        // NAIVE was not run: the abort panel must still render.
        let rendered = render_figure(&results, "partial");
        assert!(rendered.contains('-'));
    }
}
