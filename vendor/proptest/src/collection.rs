//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification for collection strategies: either an exact size or
/// a half-open range of sizes.
#[derive(Clone, Debug)]
pub struct SizeRange(Range<usize>);

impl From<usize> for SizeRange {
    fn from(exact: usize) -> SizeRange {
        SizeRange(exact..exact + 1)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> SizeRange {
        assert!(range.start < range.end, "empty size range");
        SizeRange(range)
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// The result of [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.rng.gen_range(self.size.0.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
