#!/usr/bin/env bash
# Mirrors the full CI matrix (.github/workflows/ci.yml) for offline pre-push
# runs: lint → test → stress → recovery → bench, same commands, same gates,
# one machine. Stops at the first failing stage, like the `needs:` edges do
# in CI.
#
# Usage: scripts/ci_local.sh [stage...]
#   stages: lint test stress recovery replication bench   (default: all, in order)
set -euo pipefail

cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

stage_lint() {
    echo "==> [lint] cargo fmt --all --check"
    cargo fmt --all --check
    echo "==> [lint] cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
    echo "==> [lint] engine smoke (examples/live_session.rs)"
    cargo run --example live_session
}

stage_test() {
    echo "==> [test] cargo build --release"
    cargo build --release
    echo "==> [test] cargo test --workspace -q"
    cargo test --workspace -q
    echo "==> [test] example smoke tests"
    cargo run --release --example quickstart
    cargo run --release --example genealogy
    cargo run --release --example concurrent_updates
    cargo run --release --example live_session
    cargo run --release --example experiment
    cargo run --release --example two_node_sync
}

stage_stress() {
    echo "==> [stress] free-running stress lane (ignored tests)"
    cargo test -q --release --test parallel_stress -- --ignored
    echo "==> [stress] scheduler equivalence"
    cargo test -q --release --test scheduler_equivalence
    echo "==> [stress] engine equivalence (batch engine = ConcurrentRun; live session)"
    cargo test -q --release --test engine_equivalence
    echo "==> [stress] violation-index equivalence (Shared = PerUpdate; bounded backlog)"
    cargo test -q --release --test viewmaint_equivalence
    echo "==> [stress] determinism across worker counts"
    cargo test -q --release --test determinism
    echo "==> [stress] million-user-day survival scenario (shared violation index)"
    cargo test -q --release -p youtopia-workload scenario
    echo "==> [stress] fig3 smoke at chase-thread counts 1 2 4"
    for t in 1 2 4; do
        cargo run -p youtopia-bench --bin fig3 --release -- --runs 1 --updates 20 --no-naive --chase-threads "$t"
    done
}

stage_recovery() {
    echo "==> [recovery] crash-recovery and retention suite"
    cargo test -q --release --test engine_recovery
    echo "==> [recovery] durable compaction stress (ignored tests)"
    cargo test -q --release --test engine_recovery -- --ignored
    echo "==> [recovery] workload crash-recovery scenario"
    cargo test -q --release -p youtopia-workload crash
}

stage_replication() {
    echo "==> [replication] convergence suite (smokes + proptest fault matrix)"
    cargo test -q --release --test replication_convergence
    echo "==> [replication] partition-storm stress (ignored tests)"
    cargo test -q --release --test replication_convergence -- --ignored
}

stage_bench() {
    echo "==> [bench] cargo bench --no-run --workspace"
    cargo bench --no-run --workspace
    echo "==> [bench] bench summaries"
    cargo bench -p youtopia-bench --bench storage_ops
    cargo bench -p youtopia-bench --bench violation_queries
    cargo bench -p youtopia-bench --bench trackers
    cargo bench -p youtopia-bench --bench chase
    cargo bench -p youtopia-bench --bench engine
    cargo bench -p youtopia-bench --bench wal
    cargo bench -p youtopia-bench --bench sync
    echo "==> [bench] two-tier regression gate"
    bash scripts/check_bench_regression.sh 25 100
    echo "==> [bench] fig3 smoke (quick profile)"
    cargo run -p youtopia-bench --bin fig3 --release -- --runs 2 --updates 40 --no-naive
}

stages=("$@")
if [ ${#stages[@]} -eq 0 ]; then
    stages=(lint test stress recovery replication bench)
fi
for stage in "${stages[@]}"; do
    case "$stage" in
        lint) stage_lint ;;
        test) stage_test ;;
        stress) stage_stress ;;
        recovery) stage_recovery ;;
        replication) stage_replication ;;
        bench) stage_bench ;;
        *)
            echo "unknown stage '$stage' (expected: lint test stress recovery replication bench)" >&2
            exit 2
            ;;
    esac
done
echo "ci_local: all requested stages green"
