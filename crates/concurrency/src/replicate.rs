//! Engine-side replication mechanism: per-origin event logs, the canonical
//! replicated fold, and the state-vector delta protocol.
//!
//! A **replicated** engine ([`EngineConfig::replica`] /
//! `EngineBuilder::replicated`) is a node of a multi-engine deployment. Its
//! observable history is an append-only **event log per origin node**
//! (`youtopia_core::replication`): a [`ReplicationEvent::Submit`] for every
//! update entering the exchange anywhere, and a [`ReplicationEvent::Answer`]
//! for every frontier decision. Peers exchange logs y-crdt style — "here is
//! my [`StateVector`], send what I'm missing" — via
//! [`ExchangeEngine::state_vector`] /
//! [`ExchangeEngine::encode_deltas_since`] /
//! [`ExchangeEngine::apply_remote_deltas`].
//!
//! # The canonical fold
//!
//! Convergence is defined, not hoped for: a replica's database **is** the
//! deterministic serial fold of its event set in canonical
//! `(lamport, origin)` order ([`EventStamp`]). Concretely:
//!
//! * submits are admitted one at a time, in canonical order, each driven to
//!   termination before the next is admitted (so the chase of update *k* is a
//!   pure function of the canonically earlier events);
//! * a blocked update consumes the recorded answer for its next question
//!   *position*; conflicting answers for the same `(update, position)` are
//!   resolved canonically (minimal event stamp wins, everywhere);
//! * remote events enter through the existing admission/answer paths — the
//!   deterministic sequencer, violation index and metrics all apply
//!   unchanged — so equal event sets render byte-identical databases,
//!   tuple ids, null ids and update numbers included.
//!
//! Events that arrive *behind* the fold (a partition heals and a concurrent
//! submit sorts before one already applied; a canonically smaller answer
//! displaces an applied one) cannot be folded incrementally. The engine then
//! reports [`SyncReport::rebuild_required`] and refuses further replicated
//! work: the policy layer (`youtopia-replication`'s `ReplicaNode`) rebuilds a
//! fresh engine from the genesis database and replays the merged logs — same
//! fold, same bytes, by construction. Incremental application is thus an
//! optimisation of replay, never a second semantics.
//!
//! A fold can **stall**: the canonical next question has no recorded answer
//! yet (it is waiting for a human somewhere). The stalled frontier is exactly
//! what [`ExchangeEngine::pending_frontiers`] lists, and answering it locally
//! appends the answer event — which is how decisions replicate, tagged with
//! their [`ResolutionOrigin`], so a question answered on one node is never
//! re-asked on another.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::Mutex;

use youtopia_core::replication::{
    DeltaBatch, DeltaEntry, EventStamp, NodeId, ReplicationEvent, StateVector,
};
use youtopia_core::{ChaseError, FrontierDecision, FrontierToken, ResolutionOrigin, UpdateState};
use youtopia_storage::UpdateId;

use crate::engine::{lock, AnswerOutcome, EngineShared, ExchangeEngine};

/// Why a replication API call failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyncError {
    /// The engine was not built with a replica identity
    /// ([`crate::EngineConfig::replica`]).
    NotReplicated,
    /// Events arrived behind the canonical fold; the node must be rebuilt
    /// from its logs (see the module docs) before it can accept more work.
    RebuildRequired,
    /// The underlying engine failed fatally while folding.
    Engine(ChaseError),
}

impl std::fmt::Display for SyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncError::NotReplicated => write!(f, "engine has no replica identity"),
            SyncError::RebuildRequired => {
                write!(f, "events arrived behind the canonical fold: rebuild from logs required")
            }
            SyncError::Engine(e) => write!(f, "engine failed during replicated fold: {e}"),
        }
    }
}

impl std::error::Error for SyncError {}

/// What one delta application accomplished.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SyncReport {
    /// Events newly appended to local logs.
    pub appended: usize,
    /// Events skipped because the local log already held them.
    pub duplicates: usize,
    /// Entries that could not be appended because they start past the local
    /// log end: `(origin, local_len)` — ask the peer again from `local_len`.
    /// The batch's other entries were still applied.
    pub gaps: Vec<(NodeId, u64)>,
    /// The fold can no longer proceed incrementally; rebuild from logs
    /// (events were still appended, so `export_replication_log` is complete).
    pub rebuild_required: bool,
    /// After folding, the node is blocked on a question with no recorded
    /// answer: `(target update, position)` of the canonical next decision.
    pub stalled: Option<(EventStamp, u32)>,
}

/// One admitted replicated update.
struct AdmittedUpdate {
    update: UpdateId,
    /// Recorded answers applied so far — the *position* of the update's next
    /// unanswered question.
    answers_applied: u32,
}

/// A recorded answer (the canonical winner so far) for one
/// `(target, position)` key.
struct AnswerRecord {
    stamp: EventStamp,
    decision: FrontierDecision,
    origin: ResolutionOrigin,
}

/// The replication bookkeeping hanging off `EngineShared` (one mutex,
/// outermost in the lock order: replication → cursor → slots → slot → pending).
pub(crate) struct ReplicationState {
    node: NodeId,
    /// Lamport clock: max of every lamport seen, floor for own events.
    clock: u64,
    /// Per-origin append-only event logs (everything known, fold input).
    logs: BTreeMap<NodeId, Vec<ReplicationEvent>>,
    /// Submits not yet admitted, keyed by canonical stamp.
    pending_submits: BTreeMap<EventStamp, youtopia_core::InitialOp>,
    /// Admitted submits, keyed by stamp (admission order = canonical order).
    admitted: BTreeMap<EventStamp, AdmittedUpdate>,
    /// Reverse index: engine update id → submit stamp.
    by_update: BTreeMap<UpdateId, EventStamp>,
    /// Canonical winner per `(target, position)`.
    answers: BTreeMap<(EventStamp, u32), AnswerRecord>,
    /// Stamp of the most recently admitted submit (the fold's high-water
    /// mark); a submit arriving below it means rebuild.
    last_admitted: Option<EventStamp>,
    /// The admitted-but-not-terminated submit (serial fold: at most one).
    current: Option<EventStamp>,
    /// Set when an event arrived behind the fold; cleared only by rebuild
    /// (i.e. never on this engine — the rebuilt engine starts clean).
    needs_rebuild: bool,
}

impl ReplicationState {
    pub(crate) fn new(node: NodeId) -> ReplicationState {
        ReplicationState {
            node,
            clock: 0,
            logs: BTreeMap::new(),
            pending_submits: BTreeMap::new(),
            admitted: BTreeMap::new(),
            by_update: BTreeMap::new(),
            answers: BTreeMap::new(),
            last_admitted: None,
            current: None,
            needs_rebuild: false,
        }
    }

    fn state_vector(&self) -> StateVector {
        let mut sv = StateVector::new();
        for (&origin, log) in &self.logs {
            sv.set(origin, log.len() as u64);
        }
        sv
    }

    /// Ingests one event at the tail of `origin`'s log, updating the clock,
    /// the pending/answer indexes and the rebuild flag.
    fn ingest(&mut self, origin: NodeId, event: ReplicationEvent) {
        self.clock = self.clock.max(event.lamport());
        let stamp = event.stamp(origin);
        match &event {
            ReplicationEvent::Submit { op, .. } => {
                if self.last_admitted.is_some_and(|last| stamp < last) {
                    self.needs_rebuild = true;
                }
                self.pending_submits.insert(stamp, op.clone());
            }
            ReplicationEvent::Answer { target, position, decision, origin: res_origin, .. } => {
                let key = (*target, *position);
                let record =
                    AnswerRecord { stamp, decision: decision.clone(), origin: *res_origin };
                match self.answers.get(&key) {
                    Some(existing) if existing.stamp <= stamp => {
                        // Canonical loser (or duplicate): a no-op everywhere.
                    }
                    Some(_) => {
                        // A canonically smaller answer displaces the winner.
                        // If the old winner was already folded in, the fold
                        // prefix is wrong — rebuild.
                        if self
                            .admitted
                            .get(target)
                            .is_some_and(|au| *position < au.answers_applied)
                        {
                            self.needs_rebuild = true;
                        }
                        self.answers.insert(key, record);
                    }
                    None => {
                        self.answers.insert(key, record);
                    }
                }
            }
        }
        self.logs.entry(origin).or_default().push(event);
    }

    /// Appends a locally produced event to the own log (stamping it with the
    /// next Lamport tick) and returns its stamp.
    fn append_own(&mut self, make: impl FnOnce(u64) -> ReplicationEvent) -> EventStamp {
        self.clock += 1;
        let event = make(self.clock);
        debug_assert_eq!(event.lamport(), self.clock);
        let stamp = event.stamp(self.node);
        self.ingest(self.node, event);
        stamp
    }
}

/// Blocks until the engine is *settled*: idle, blocked on a published
/// frontier, or failed. On an inline engine this drives the sequencer on the
/// calling thread; on a threaded one it waits for the workers.
fn settle(engine: &ExchangeEngine) -> Result<(), SyncError> {
    let shared: &EngineShared = &engine.shared;
    if shared.inline {
        shared.drive_inline().map_err(SyncError::Engine)?;
    } else {
        loop {
            if shared.stop.load(Ordering::SeqCst) {
                break;
            }
            let gen = shared.signal.current();
            if shared.unanswered.load(Ordering::SeqCst) > 0
                || shared.active.load(Ordering::SeqCst) == 0
            {
                break;
            }
            shared.signal.wait_past(gen);
        }
    }
    match engine.error() {
        Some(e) => Err(SyncError::Engine(e)),
        None => Ok(()),
    }
}

/// Admits one replicated update through the internal submission path (no
/// handle, no admission cap — fold admissions are never refused; backpressure
/// belongs at the edge that accepted the original submit).
fn admit_internal(shared: &EngineShared, op: youtopia_core::InitialOp) -> UpdateId {
    let mut cursor = lock(&shared.cursor);
    let mut slots = shared.slots.write().unwrap_or_else(|e| e.into_inner());
    let base = slots.total();
    let admitted = shared.admit_locked(&mut slots, vec![op]);
    cursor.live.extend(base..base + 1);
    let id = admitted[0].0;
    drop(slots);
    drop(cursor);
    shared.signal.bump();
    id
}

/// Applies a recorded answer to the (unique, serial-fold) pending frontier of
/// `update`. An invalid decision is *consumed deterministically*: the
/// question stays pending and the fold waits for the next position's answer —
/// every replica rejects the same decision at the same position, so this too
/// converges.
fn apply_recorded_answer(
    shared: &EngineShared,
    update: UpdateId,
    decision: FrontierDecision,
    origin: ResolutionOrigin,
) {
    let removed = {
        let mut pending = lock(&shared.pending);
        let token = pending.iter().find(|(_, e)| e.update == update).map(|(&t, _)| t);
        token.and_then(|t| pending.remove(&t).map(|e| (t, e)))
    };
    let Some((token, entry)) = removed else { return };
    // Applied advances the fold; Err re-listed the entry (consumed no-op);
    // Stale cannot happen (the slot was observed blocked under this entry).
    let _ = shared.apply_answer(FrontierToken(token), entry, decision, origin);
}

/// The state of the fold's current update after settling.
enum CurrentState {
    Running, // still chasing (threaded engine mid-flight)
    Blocked,
    Done,
}

fn current_state(shared: &EngineShared, update: UpdateId) -> CurrentState {
    let Ok(cell) = shared.lookup(update) else { return CurrentState::Done };
    let slot = lock(&cell.slot);
    if slot.failed.is_some() || slot.exec.is_terminated() {
        return CurrentState::Done;
    }
    if slot.published.is_some() && slot.exec.state() == UpdateState::AwaitingFrontier {
        return CurrentState::Blocked;
    }
    CurrentState::Running
}

/// Drives the canonical fold as far as the recorded events allow: settle,
/// feed recorded answers, admit the canonical next submit, repeat. Returns
/// the stall point, if any. Must be called with the replication mutex held.
fn pump(
    engine: &ExchangeEngine,
    st: &mut ReplicationState,
) -> Result<Option<(EventStamp, u32)>, SyncError> {
    let shared: &EngineShared = &engine.shared;
    if st.needs_rebuild {
        return Err(SyncError::RebuildRequired);
    }
    loop {
        settle(engine)?;
        if let Some(stamp) = st.current {
            let au = st.admitted.get_mut(&stamp).expect("current is admitted");
            match current_state(shared, au.update) {
                CurrentState::Done => {
                    st.current = None;
                    continue;
                }
                CurrentState::Running => {
                    // Settle returned while the update still runs: only
                    // possible when the engine is stopping.
                    return Ok(None);
                }
                CurrentState::Blocked => {
                    let position = au.answers_applied;
                    match st.answers.get(&(stamp, position)) {
                        Some(record) => {
                            let (decision, origin) = (record.decision.clone(), record.origin);
                            au.answers_applied += 1;
                            apply_recorded_answer(shared, au.update, decision, origin);
                            continue;
                        }
                        None => return Ok(Some((stamp, position))),
                    }
                }
            }
        }
        match st.pending_submits.pop_first() {
            Some((stamp, op)) => {
                let update = admit_internal(shared, op);
                st.admitted.insert(stamp, AdmittedUpdate { update, answers_applied: 0 });
                st.by_update.insert(update, stamp);
                st.last_admitted = Some(stamp);
                st.current = Some(stamp);
            }
            None => return Ok(None),
        }
    }
}

/// The replicated path of [`ExchangeEngine::answer_with_origin`]: apply the
/// decision, and on success append it to the own event log (so peers replay
/// it) and continue the fold.
pub(crate) fn answer_replicated(
    engine: &ExchangeEngine,
    token: FrontierToken,
    decision: FrontierDecision,
    origin: ResolutionOrigin,
) -> Result<AnswerOutcome, ChaseError> {
    let shared = &engine.shared;
    let repl = shared.replication.as_ref().expect("caller checked");
    let mut st = lock(repl);
    if st.needs_rebuild {
        return Err(ChaseError::InvalidDecision(
            "replica is behind the canonical fold: rebuild before answering".into(),
        ));
    }
    let entry = lock(&shared.pending).remove(&token.0);
    let Some(entry) = entry else { return Ok(AnswerOutcome::Stale) };
    let Some(&target) = st.by_update.get(&entry.update) else {
        // Not a replicated update (cannot happen: plain submits are refused).
        lock(&shared.pending).insert(token.0, entry);
        return Err(ChaseError::InvalidDecision("frontier belongs to no replicated update".into()));
    };
    let position = st.admitted.get(&target).expect("admitted").answers_applied;
    match shared.apply_answer(token, entry, decision.clone(), origin)? {
        AnswerOutcome::Stale => Ok(AnswerOutcome::Stale),
        AnswerOutcome::Applied => {
            st.append_own(|lamport| ReplicationEvent::Answer {
                lamport,
                target,
                position,
                decision,
                origin,
            });
            st.admitted.get_mut(&target).expect("admitted").answers_applied = position + 1;
            match pump(engine, &mut st) {
                Ok(_) => Ok(AnswerOutcome::Applied),
                // The answer itself landed; a fold failure surfaces on the
                // engine error (and every later call).
                Err(SyncError::Engine(e)) => Err(e),
                Err(_) => Ok(AnswerOutcome::Applied),
            }
        }
    }
}

impl ExchangeEngine {
    fn replication(&self) -> Result<&Mutex<ReplicationState>, SyncError> {
        self.shared.replication.as_ref().ok_or(SyncError::NotReplicated)
    }

    /// This engine's replica identity, if it has one.
    pub fn node_id(&self) -> Option<NodeId> {
        self.shared.config.replica
    }

    /// The node's [`StateVector`]: how much of each origin's event log it
    /// holds. The handshake currency of the delta protocol.
    pub fn state_vector(&self) -> Result<StateVector, SyncError> {
        Ok(lock(self.replication()?).state_vector())
    }

    /// Encodes everything `since` is missing as per-origin log suffixes —
    /// y-crdt's `encode_state_as_update(state_vector)`.
    pub fn encode_deltas_since(&self, since: &StateVector) -> Result<DeltaBatch, SyncError> {
        let st = lock(self.replication()?);
        let mut entries = Vec::new();
        for (&origin, log) in &st.logs {
            let have = since.get(origin) as usize;
            if have < log.len() {
                entries.push(DeltaEntry {
                    origin,
                    first_seq: have as u64,
                    events: log[have..].to_vec(),
                });
            }
        }
        Ok(DeltaBatch { entries })
    }

    /// The node's complete event history as one batch (every origin from
    /// sequence 0) — the rebuild input.
    pub fn export_replication_log(&self) -> Result<DeltaBatch, SyncError> {
        self.encode_deltas_since(&StateVector::new())
    }

    /// Applies a peer's delta batch: appends the unseen events to the local
    /// logs and drives the canonical fold as far as they allow. Duplicates
    /// are skipped, out-of-reach suffixes are reported as
    /// [`SyncReport::gaps`] (re-request from the returned position), and
    /// events landing behind the fold set [`SyncReport::rebuild_required`].
    pub fn apply_remote_deltas(&self, batch: &DeltaBatch) -> Result<SyncReport, SyncError> {
        let repl = self.replication()?;
        let mut st = lock(repl);
        let mut report = SyncReport::default();
        for entry in &batch.entries {
            let have = st.logs.get(&entry.origin).map(|l| l.len() as u64).unwrap_or(0);
            if entry.first_seq > have {
                report.gaps.push((entry.origin, have));
                continue;
            }
            let skip = (have - entry.first_seq) as usize;
            report.duplicates += skip.min(entry.events.len());
            for event in entry.events.iter().skip(skip) {
                st.ingest(entry.origin, event.clone());
                report.appended += 1;
            }
        }
        match pump(self, &mut st) {
            Ok(stalled) => {
                report.stalled = stalled;
                Ok(report)
            }
            Err(SyncError::RebuildRequired) => {
                report.rebuild_required = true;
                Ok(report)
            }
            Err(e) => Err(e),
        }
    }

    /// Submits one update *as this replica*: appends a submit event to the
    /// own log (peers will pull it) and folds it in locally. Returns the
    /// event stamp — the update's identity across the whole replica set
    /// (resolve it to this engine's update id with
    /// [`replicated_update_id`](Self::replicated_update_id)).
    pub fn submit_replicated(&self, op: youtopia_core::InitialOp) -> Result<EventStamp, SyncError> {
        let repl = self.replication()?;
        let mut st = lock(repl);
        if st.needs_rebuild {
            return Err(SyncError::RebuildRequired);
        }
        let stamp = st.append_own(|lamport| ReplicationEvent::Submit { lamport, op });
        pump(self, &mut st)?;
        Ok(stamp)
    }

    /// Resolves a replicated submit's event stamp to the update id this
    /// engine folded it in under (`None` while it is still pending). Update
    /// ids agree across replicas holding the same event set — they are
    /// assigned in canonical order — but differ after divergent prefixes, so
    /// the *stamp* is the portable name.
    pub fn replicated_update_id(&self, stamp: EventStamp) -> Result<Option<UpdateId>, SyncError> {
        Ok(lock(self.replication()?).admitted.get(&stamp).map(|au| au.update))
    }

    /// Whether events have arrived behind the canonical fold, requiring a
    /// rebuild from logs (see the module docs).
    pub fn replication_needs_rebuild(&self) -> Result<bool, SyncError> {
        Ok(lock(self.replication()?).needs_rebuild)
    }

    /// Drives the fold without new input (useful after answering through
    /// [`ExchangeEngine::answer`], which already pumps, or to observe the
    /// stall point). Returns the canonical next unanswered question, if the
    /// fold is stalled on one.
    pub fn pump_replication(&self) -> Result<Option<(EventStamp, u32)>, SyncError> {
        let repl = self.replication()?;
        let mut st = lock(repl);
        pump(self, &mut st)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EngineBuilder;
    use youtopia_core::{FrontierResolver, InitialOp, RandomResolver};
    use youtopia_mappings::MappingSet;
    use youtopia_storage::{Database, RelationId, Value};

    /// The Example 3.1 fragment: deleting the review blocks the backward
    /// chase on a negative frontier (delete the attraction or the tour?).
    fn travel() -> (Database, MappingSet) {
        let mut db = Database::new();
        db.add_relation("A", ["location", "name"]).unwrap();
        db.add_relation("T", ["attraction", "company", "tour_start"]).unwrap();
        db.add_relation("R", ["company", "attraction", "review"]).unwrap();
        let mut mappings = MappingSet::new();
        mappings
            .add_parsed(db.catalog(), "sigma3: A(l, n) & T(n, c, cs) -> exists r. R(c, n, r)")
            .unwrap();
        let u = youtopia_storage::UpdateId(0);
        db.insert_by_name("A", &["Geneva", "Geneva Winery"], u);
        db.insert_by_name("T", &["Geneva Winery", "XYZ", "Syracuse"], u);
        db.insert_by_name("R", &["XYZ", "Geneva Winery", "Great!"], u);
        (db, mappings)
    }

    fn replica(node: u32) -> ExchangeEngine {
        let (db, mappings) = travel();
        EngineBuilder::new().inline().replicated(NodeId(node)).build(db, mappings).unwrap()
    }

    /// Deletes the genesis review tuple — every replica shares the genesis,
    /// so the tuple id is the same on all of them.
    fn delete_review() -> InitialOp {
        let (db, _) = travel();
        let r = db.relation_id("R").unwrap();
        let review = db.scan(r, youtopia_storage::UpdateId::OMNISCIENT)[0].0;
        InitialOp::Delete { relation: r, tuple: review }
    }

    fn insert_city(name: &str) -> InitialOp {
        // A is the first relation added by `travel`.
        InitialOp::Insert {
            relation: RelationId(0),
            values: vec![Value::constant("Geneva"), Value::constant(name)],
        }
    }

    /// Answers every question the engine asks, with replicated answers.
    fn answer_all(engine: &ExchangeEngine, seed: u64) {
        let mut resolver = RandomResolver::seeded(seed);
        while let Some(p) = engine.pending_frontiers().first().cloned() {
            let decision = engine.read(|db| resolver.resolve(&db.snapshot(p.update), &p.request));
            engine.answer(p.token, decision).unwrap();
        }
    }

    #[test]
    fn plain_submit_is_refused_on_a_replica() {
        let engine = replica(0);
        let err = engine.submit(delete_review()).unwrap_err();
        assert!(matches!(err, crate::engine::SubmitError::Replicated));
        engine.shutdown();
    }

    #[test]
    fn replication_api_requires_a_replica() {
        let (db, mappings) = travel();
        let engine = EngineBuilder::new().inline().build(db, mappings).unwrap();
        assert_eq!(engine.state_vector().unwrap_err(), SyncError::NotReplicated);
        assert!(engine.node_id().is_none());
        engine.shutdown();
    }

    #[test]
    fn local_submits_replicate_to_a_peer_and_render_identically() {
        let a = replica(0);
        let b = replica(1);
        let stamp = a.submit_replicated(delete_review()).unwrap();
        assert_eq!(stamp, EventStamp { lamport: 1, origin: NodeId(0) });
        // The backward chase of the delete stalls on the negative frontier.
        let stalled = a.pump_replication().unwrap();
        assert_eq!(stalled, Some((stamp, 0)));
        answer_all(&a, 4);
        assert!(a.pump_replication().unwrap().is_none());

        // Ship everything to B: it folds the submit AND the recorded answers —
        // no question is ever asked on B.
        let delta = a.encode_deltas_since(&b.state_vector().unwrap()).unwrap();
        let report = b.apply_remote_deltas(&delta).unwrap();
        assert!(report.appended >= 2, "a submit and at least one answer");
        assert_eq!(report.stalled, None);
        assert!(b.pending_frontiers().is_empty(), "answered on A, never re-asked on B");
        assert_eq!(a.state_vector().unwrap(), b.state_vector().unwrap());

        let a_bytes = a.read(youtopia_storage::wal::serialize_database);
        let b_bytes = b.read(youtopia_storage::wal::serialize_database);
        assert_eq!(a_bytes, b_bytes, "same delivered set => byte-identical databases");
        // The same update id was assigned on both sides (canonical order).
        assert_eq!(b.replicated_update_id(stamp).unwrap(), a.replicated_update_id(stamp).unwrap());
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn duplicates_and_gaps_are_reported_not_misapplied() {
        let a = replica(0);
        let b = replica(1);
        let _ = a.submit_replicated(delete_review()).unwrap();
        answer_all(&a, 4);
        let full = a.export_replication_log().unwrap();
        let r1 = b.apply_remote_deltas(&full).unwrap();
        assert!(r1.appended >= 2 && r1.duplicates == 0 && r1.gaps.is_empty());
        // Re-applying the same batch is pure duplicates.
        let r2 = b.apply_remote_deltas(&full).unwrap();
        assert_eq!(r2.appended, 0);
        assert_eq!(r2.duplicates, r1.appended);
        // A suffix starting past the log end is a gap, and harmless.
        let mut future = full.clone();
        for entry in &mut future.entries {
            entry.first_seq += 100;
        }
        let r3 = b.apply_remote_deltas(&future).unwrap();
        assert_eq!(r3.appended, 0);
        assert_eq!(r3.gaps.len(), future.entries.len());
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn concurrent_submits_behind_the_fold_require_rebuild() {
        let a = replica(0);
        let b = replica(1);
        // Both nodes submit concurrently (no sync in between): both events
        // carry lamport 1, so B's own (1, n1) folds first there while A's
        // (1, n0) is canonically smaller.
        let sa = a.submit_replicated(insert_city("Winery Tours HQ")).unwrap();
        let sb = b.submit_replicated(insert_city("Maid of the Mist HQ")).unwrap();
        assert!(sa < sb, "origin breaks the lamport tie");
        let delta = a.encode_deltas_since(&StateVector::new()).unwrap();
        let report = b.apply_remote_deltas(&delta).unwrap();
        assert!(report.rebuild_required, "A's submit sorts before B's applied one");
        assert!(b.replication_needs_rebuild().unwrap());
        // A, by contrast, can fold B's later event incrementally.
        let delta = b.encode_deltas_since(&a.state_vector().unwrap()).unwrap();
        let report = a.apply_remote_deltas(&delta).unwrap();
        assert!(!report.rebuild_required);
        // B refuses new work until rebuilt.
        assert_eq!(
            b.submit_replicated(insert_city("Rome Office")).unwrap_err(),
            SyncError::RebuildRequired
        );
        a.shutdown();
        b.shutdown();
    }
}
