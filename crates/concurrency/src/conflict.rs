//! Direct conflict detection (Algorithm 4's inner check).
//!
//! After a chase step of update `j` performs its writes, every stored read
//! query of every update numbered above `j` is checked: if a write
//! retroactively changes the query's answer, that reader read prematurely and
//! must abort.

use youtopia_core::ReadQuery;
use youtopia_mappings::MappingSet;
use youtopia_storage::{Database, TupleChange, UpdateId};

use crate::log::ReadLog;

/// A direct conflict: `reader` stored a read query whose answer was
/// retroactively changed by a write of `writer`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirectConflict {
    /// The lower-numbered update whose write caused the conflict.
    pub writer: UpdateId,
    /// The higher-numbered update that must abort.
    pub reader: UpdateId,
    /// Index of the offending change within the step's change list (for
    /// diagnostics).
    pub change_index: usize,
}

/// Checks one change against one reader's stored read queries.
pub fn change_conflicts_with_reader(
    db: &Database,
    mappings: &MappingSet,
    change: &TupleChange,
    reader: UpdateId,
    reads: &[ReadQuery],
) -> bool {
    // The reader's own snapshot is the context in which its queries were (and
    // would be re-) evaluated.
    let snapshot = db.snapshot(reader);
    reads.iter().any(|q| q.affected_by(&snapshot, mappings, change))
}

/// The relation-keyed variant of the Algorithm 4 inner check: does `change`
/// retroactively affect any stored read query of `reader`? Only the queries
/// whose footprint touches the changed relation (plus the wildcards) are
/// evaluated — the others cannot be affected. Shared by the scheduler's
/// abort collection and [`direct_conflicts`].
pub fn change_conflicts_with_reader_keyed(
    db: &Database,
    mappings: &MappingSet,
    change: &TupleChange,
    reader: UpdateId,
    read_log: &ReadLog,
) -> bool {
    // The reader's own snapshot is the context in which its queries were (and
    // would be re-) evaluated.
    let snapshot = db.snapshot(reader);
    read_log
        .reads_touching(reader, change.relation())
        .any(|q| q.affected_by(&snapshot, mappings, change))
}

/// Finds every direct conflict caused by the given changes of `writer`
/// (Algorithm 4: "for all writes w performed by the step, for all stored read
/// queries q of updates numbered i > j …").
///
/// The read log is keyed by relation, so for each change only the readers
/// whose stored queries touch the changed relation (plus the wildcard
/// readers) are consulted — not every higher-numbered reader. Queries that
/// cannot read the changed relation can never be retroactively affected, so
/// the keyed walk finds exactly the conflicts the exhaustive one would.
pub fn direct_conflicts(
    db: &Database,
    mappings: &MappingSet,
    writer: UpdateId,
    changes: &[TupleChange],
    read_log: &ReadLog,
) -> Vec<DirectConflict> {
    let mut conflicts = Vec::new();
    for (change_index, change) in changes.iter().enumerate() {
        for reader in read_log.readers_above_touching(writer, change.relation()) {
            if change_conflicts_with_reader_keyed(db, mappings, change, reader, read_log) {
                conflicts.push(DirectConflict { writer, reader, change_index });
            }
        }
    }
    conflicts
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_mappings::{ViolationQuery, ViolationSeed};
    use youtopia_storage::{Value, Write};

    #[test]
    fn premature_reader_is_detected() {
        // Update 2 read σ3's violation query (and saw no violation); update 1
        // then deletes the review, retroactively changing that answer — the
        // Example 3.1 situation.
        let mut db = Database::new();
        db.add_relation("A", ["location", "name"]).unwrap();
        db.add_relation("T", ["attraction", "company", "tour_start"]).unwrap();
        db.add_relation("R", ["company", "attraction", "review"]).unwrap();
        let mut mappings = MappingSet::new();
        mappings
            .add_parsed(db.catalog(), "sigma3: A(l, n) & T(n, c, cs) -> exists r. R(c, n, r)")
            .unwrap();
        let u0 = UpdateId(0);
        db.insert_by_name("A", &["Geneva", "Geneva Winery"], u0);
        db.insert_by_name("T", &["Geneva Winery", "XYZ", "Syracuse"], u0);
        let review = db.insert_by_name("R", &["XYZ", "Geneva Winery", "Great!"], u0);

        let mut read_log = ReadLog::new();
        let sigma3 = mappings.by_name("sigma3").unwrap().id;
        read_log.record(
            UpdateId(2),
            vec![ReadQuery::Violation(ViolationQuery {
                mapping: sigma3,
                seed: ViolationSeed::Full,
            })],
            &mappings,
        );

        // Update 1 (lower number) deletes the review.
        let r = db.relation_id("R").unwrap();
        let applied =
            db.apply_all(&[Write::Delete { relation: r, tuple: review }], UpdateId(1)).unwrap();
        let changes: Vec<TupleChange> = applied.into_iter().flat_map(|w| w.changes).collect();

        let conflicts = direct_conflicts(&db, &mappings, UpdateId(1), &changes, &read_log);
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].reader, UpdateId(2));
        assert_eq!(conflicts[0].writer, UpdateId(1));

        // A reader below the writer is never considered.
        let mut low_log = ReadLog::new();
        low_log.record(
            UpdateId(0),
            vec![ReadQuery::Violation(ViolationQuery {
                mapping: sigma3,
                seed: ViolationSeed::Full,
            })],
            &mappings,
        );
        assert!(direct_conflicts(&db, &mappings, UpdateId(1), &changes, &low_log).is_empty());
    }

    #[test]
    fn unrelated_writes_do_not_conflict() {
        let mut db = Database::new();
        db.add_relation("C", ["city"]).unwrap();
        db.add_relation("S", ["code", "location", "city_served"]).unwrap();
        db.add_relation("Other", ["x"]).unwrap();
        let mut mappings = MappingSet::new();
        mappings.add_parsed(db.catalog(), "sigma1: C(c) -> exists a, l. S(a, l, c)").unwrap();

        let mut read_log = ReadLog::new();
        let sigma1 = mappings.by_name("sigma1").unwrap().id;
        read_log.record(
            UpdateId(5),
            vec![ReadQuery::Violation(ViolationQuery {
                mapping: sigma1,
                seed: ViolationSeed::Full,
            })],
            &mappings,
        );

        let other = db.relation_id("Other").unwrap();
        let applied = db
            .apply_all(
                &[Write::Insert { relation: other, values: vec![Value::constant("v")] }],
                UpdateId(1),
            )
            .unwrap();
        let changes: Vec<TupleChange> = applied.into_iter().flat_map(|w| w.changes).collect();
        assert!(direct_conflicts(&db, &mappings, UpdateId(1), &changes, &read_log).is_empty());
    }
}
