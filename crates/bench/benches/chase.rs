//! Benchmarks for the cooperative chase itself: forward-chase throughput on
//! the travel schema, backward-chase cascades, and the effect of the user's
//! unify-versus-expand behaviour on chase length (an ablation the paper's
//! design discussion motivates but does not measure).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use youtopia_core::{InitialOp, RandomResolver, UnifyResolver, UpdateExchange};
use youtopia_mappings::MappingSet;
use youtopia_storage::{Database, UpdateId, Value};

fn travel(rows: usize) -> (Database, MappingSet) {
    let mut db = Database::new();
    db.add_relation("C", ["city"]).unwrap();
    db.add_relation("S", ["code", "location", "city_served"]).unwrap();
    db.add_relation("A", ["location", "name"]).unwrap();
    db.add_relation("T", ["attraction", "company", "tour_start"]).unwrap();
    db.add_relation("R", ["company", "attraction", "review"]).unwrap();
    let mut mappings = MappingSet::new();
    mappings
        .add_parsed_many(
            db.catalog(),
            "
            sigma1: C(c) -> exists a, l. S(a, l, c)
            sigma2: S(a, c, c2) -> C(c) & C(c2)
            sigma3: A(l, n) & T(n, c, cs) -> exists r. R(c, n, r)
            ",
        )
        .unwrap();
    let u = UpdateId(0);
    for i in 0..rows {
        db.insert_by_name("A", &[&format!("loc{i}"), &format!("attr{i}")], u);
        db.insert_by_name("T", &[&format!("attr{i}"), &format!("co{i}"), &format!("city{i}")], u);
        db.insert_by_name("R", &[&format!("co{i}"), &format!("attr{i}"), "ok"], u);
    }
    (db, mappings)
}

fn bench_forward_chase_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase/forward_insert_tour");
    group.sample_size(15);
    for rows in [50usize, 200, 800] {
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, &rows| {
            b.iter_batched(
                || {
                    let (db, mappings) = travel(rows);
                    UpdateExchange::new(db, mappings)
                },
                |mut exchange| {
                    let mut user = RandomResolver::seeded(1);
                    exchange
                        .insert_constants("T", &["attr1", "brand-new-co", "somewhere"], &mut user)
                        .unwrap();
                    black_box(exchange.db().total_visible(UpdateId::OMNISCIENT))
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_backward_chase_delete(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase/backward_delete_review");
    group.sample_size(15);
    for rows in [50usize, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, &rows| {
            b.iter_batched(
                || {
                    let (db, mappings) = travel(rows);
                    let r = db.relation_id("R").unwrap();
                    let victim = db.scan(r, UpdateId::OMNISCIENT)[rows / 2].0;
                    (UpdateExchange::new(db, mappings), r, victim)
                },
                |(mut exchange, r, victim)| {
                    let mut user = RandomResolver::seeded(3);
                    exchange
                        .run_update(InitialOp::Delete { relation: r, tuple: victim }, &mut user)
                        .unwrap();
                    black_box(exchange.db().visible_count(r, UpdateId::OMNISCIENT))
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_resolver_ablation(c: &mut Criterion) {
    // How much chase work does the user's behaviour cause? A unifying user
    // keeps the cyclic C/S mappings tight; a random user sometimes expands,
    // lengthening the chase.
    let mut group = c.benchmark_group("chase/resolver_ablation_city_insert");
    group.sample_size(15);
    group.bench_function("unify_resolver", |b| {
        b.iter_batched(
            || {
                let (db, mappings) = travel(50);
                UpdateExchange::new(db, mappings)
            },
            |mut exchange| {
                let mut user = UnifyResolver;
                for i in 0..5 {
                    exchange
                        .insert("C", vec![Value::constant(&format!("city{i}"))], &mut user)
                        .unwrap();
                }
                black_box(exchange.db().total_visible(UpdateId::OMNISCIENT))
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("random_resolver", |b| {
        b.iter_batched(
            || {
                let (db, mappings) = travel(50);
                UpdateExchange::new(db, mappings)
            },
            |mut exchange| {
                let mut user = RandomResolver::seeded(11);
                for i in 0..5 {
                    exchange
                        .insert("C", vec![Value::constant(&format!("city{i}"))], &mut user)
                        .unwrap();
                }
                black_box(exchange.db().total_visible(UpdateId::OMNISCIENT))
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_forward_chase_insert,
    bench_backward_chase_delete,
    bench_resolver_ablation
);
criterion_main!(benches);
