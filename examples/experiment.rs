//! A miniature Section 6 experiment, runnable from the command line.
//!
//! Generates a random schema, a random mapping set, an initial database
//! populated through the cooperative chase, and an update workload; then runs
//! the workload concurrently under the `COARSE` and `PRECISE` trackers for
//! every mapping density — a scaled-down version of what the `fig3`/`fig4`
//! binaries in `crates/bench` produce. The (density, tracker) grid is fanned
//! out over worker threads; results are identical at any thread count.
//!
//! ```text
//! cargo run --example experiment --release [-- mixed|null-heavy|skewed] [--threads N]
//! ```

use youtopia::workload::{
    build_fixture, generate_workload, mapping_stats, run_experiment, ExperimentConfig, WorkloadKind,
};
use youtopia::{TrackerKind, UpdateId};

fn main() {
    let mut kind = WorkloadKind::AllInserts;
    let mut threads = 0usize; // 0 = one worker per core
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "mixed" => kind = WorkloadKind::Mixed,
            "null-heavy" => kind = WorkloadKind::NullReplacementHeavy,
            "skewed" => kind = WorkloadKind::Skewed,
            "deep-cascade" => kind = WorkloadKind::DeepCascade,
            "--threads" => {
                threads =
                    args.next().and_then(|v| v.parse().ok()).expect("--threads needs a number");
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: experiment [mixed|null-heavy|skewed|deep-cascade] [--threads N]");
                std::process::exit(2);
            }
        }
    }

    let mut config = ExperimentConfig::quick();
    config.runs = 1;
    config.worker_threads = threads;
    println!("Building the experiment fixture (schema, mappings, initial database)…");
    let fixture = build_fixture(&config).expect("fixture generation succeeds");
    let stats = mapping_stats(&fixture.mappings);
    println!(
        "  {} relations, {} mappings (avg {:.1} LHS / {:.1} RHS atoms), {} initial tuples",
        config.relations,
        stats.mappings,
        stats.avg_lhs_atoms,
        stats.avg_rhs_atoms,
        fixture.initial_db.total_visible(UpdateId::OMNISCIENT),
    );
    let workload = generate_workload(
        &config,
        &fixture.schema,
        &fixture.initial_db,
        &fixture.mappings,
        kind,
        0,
    );
    let worker_label = if threads == 0 { "all cores".to_string() } else { threads.to_string() };
    println!("  workload: {} updates ({kind}), workers: {worker_label}\n", workload.len());

    println!(
        "{:>10} {:>9} {:>9} {:>11} {:>11} {:>9}",
        "tracker", "mappings", "aborts", "cascading", "conflicts", "steps"
    );
    let trackers = [TrackerKind::Coarse, TrackerKind::Precise];
    let mut print_point = |point: &youtopia::workload::ExperimentPoint| {
        println!(
            "{:>10} {:>9} {:>9} {:>11} {:>11} {:>9}",
            point.tracker.name(),
            point.mappings,
            point.avg.aborts,
            point.avg.cascading_abort_requests,
            point.avg.direct_conflict_requests,
            point.avg.steps
        );
    };
    let results = run_experiment(&config, kind, &trackers, Some(&mut print_point))
        .expect("experiment terminates");
    println!("\nsweep wall time: {:.2}s", results.total_seconds);

    println!("\nRun the full sweeps (all three trackers, averaged over repeated runs) with:");
    println!("  cargo run -p youtopia-bench --bin fig3 --release");
    println!("  cargo run -p youtopia-bench --bin fig4 --release");
}
