//! Multi-threaded stress lane for the free-running [`ParallelRun`]
//! scheduler. `#[ignore]`d in the default suite — CI runs it explicitly with
//! `cargo test --release -- --ignored` in the stress job, where real OS
//! preemption produces interleavings a 1-shot unit test cannot.
//!
//! Each case runs a sizeable workload free-running (no sequencer), inside a
//! watchdog thread: if the scheduler deadlocks or livelocks, the test fails
//! by timeout instead of hanging the suite. Afterwards the system invariants
//! must hold — every update terminated (workload size accounted), the final
//! database satisfies every mapping, and the per-update statistics are sane.

use std::sync::mpsc;
use std::time::Duration;

use youtopia::concurrency::{RunMetrics, SchedulerConfig, SchedulingPolicy, SpeculationMode};
use youtopia::mappings::satisfies_all;
use youtopia::workload::{build_fixture, generate_workload, ExperimentConfig};
use youtopia::{ConcurrentRun, ParallelRun, RandomResolver, TrackerKind, UpdateId, WorkloadKind};

/// Runs `f` on its own thread and panics if it does not finish in `timeout`
/// (a hung free-running scheduler would otherwise block the whole lane).
fn with_deadline<T: Send + 'static>(
    timeout: Duration,
    label: &str,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(timeout) {
        Ok(result) => {
            handle.join().expect("stress worker panicked");
            result
        }
        Err(_) => panic!("{label}: free-running scheduler did not finish within {timeout:?} — deadlock or livelock"),
    }
}

fn stress_once(
    seed: u64,
    tracker: TrackerKind,
    kind: WorkloadKind,
    policy: SchedulingPolicy,
    updates: usize,
) -> RunMetrics {
    let label = format!("seed {seed}, {tracker}, {kind}, {policy:?}");
    with_deadline(Duration::from_secs(120), &label.clone(), move || {
        let mut config = ExperimentConfig::quick();
        config.seed = seed;
        config.initial_tuples = 300;
        config.workload_updates = updates;
        let fixture = build_fixture(&config).expect("fixture builds");
        let ops = generate_workload(
            &config,
            &fixture.schema,
            &fixture.initial_db,
            &fixture.mappings,
            kind,
            seed,
        );
        assert_eq!(ops.len(), updates);
        let scheduler = SchedulerConfig::with_tracker(tracker)
            .with_policy(policy)
            .with_workers(4)
            .free_running();
        let first_number = config.initial_tuples as u64 + 1_000;
        let mut run = ParallelRun::new(
            fixture.initial_db.clone(),
            fixture.mappings.clone(),
            ops,
            first_number,
            scheduler,
        );
        let metrics = run.run(&mut RandomResolver::seeded(seed ^ 0x57E55)).unwrap();

        // System invariants: every update ran and terminated, restarts match
        // the abort count, and the final repository is consistent.
        assert_eq!(metrics.workload_size, updates, "{label}");
        assert!(metrics.steps >= updates, "{label}: every update steps at least once");
        let stats = run.update_stats();
        assert_eq!(stats.len(), updates, "{label}");
        assert!(stats.iter().all(|(_, s)| s.steps > 0), "{label}: no update may be skipped");
        let restarts: usize = stats.iter().map(|(_, s)| s.restarts).sum();
        assert_eq!(restarts, metrics.aborts, "{label}: every abort restarts its update");
        let (db, mappings, _) = run.into_parts();
        assert!(
            satisfies_all(&db.snapshot(UpdateId::OMNISCIENT), &mappings),
            "{label}: final database must satisfy all mappings"
        );
        metrics
    })
}

/// The headline stress case from the CI lane: 200 updates, 4 free-running
/// workers, the contention-heavy skewed workload.
#[test]
#[ignore = "multi-thread stress lane: run with `cargo test --release -- --ignored`"]
fn free_running_skewed_200_updates_4_workers() {
    let metrics = stress_once(
        1,
        TrackerKind::Coarse,
        WorkloadKind::Skewed,
        SchedulingPolicy::StepRoundRobin,
        200,
    );
    assert!(metrics.changes > 0);
}

/// Deep cascades keep violation queues long across many overlapping read
/// halves; PRECISE exercises exact dependency recording under contention.
#[test]
#[ignore = "multi-thread stress lane: run with `cargo test --release -- --ignored`"]
fn free_running_deep_cascade_precise() {
    stress_once(
        2,
        TrackerKind::Precise,
        WorkloadKind::DeepCascade,
        SchedulingPolicy::StepRoundRobin,
        200,
    );
}

/// The stratum policy under free-running: workers hold updates for whole
/// deterministic strata, widening the owned-slot windows the abort-flag
/// protocol must survive.
#[test]
#[ignore = "multi-thread stress lane: run with `cargo test --release -- --ignored`"]
fn free_running_mixed_stratum_policy() {
    stress_once(
        3,
        TrackerKind::Naive,
        WorkloadKind::Mixed,
        SchedulingPolicy::StratumRoundRobin,
        200,
    );
}

/// High-contention speculative determinism: every update hammers the same hot
/// relations (skewed workload), so most speculations are invalidated by the
/// commit immediately before them — the worst case for the OCC path. The
/// committed sequence must nevertheless stay byte-identical to the
/// single-threaded [`ConcurrentRun`] reference, and every started speculation
/// must be accounted for as committed or discarded.
#[test]
#[ignore = "multi-thread stress lane: run with `cargo test --release -- --ignored`"]
fn speculative_deterministic_skewed_high_contention() {
    let label = "speculative deterministic, skewed, 4 workers";
    with_deadline(Duration::from_secs(120), label, move || {
        let mut config = ExperimentConfig::quick();
        config.seed = 7;
        config.initial_tuples = 300;
        config.workload_updates = 200;
        let fixture = build_fixture(&config).expect("fixture builds");
        let ops = generate_workload(
            &config,
            &fixture.schema,
            &fixture.initial_db,
            &fixture.mappings,
            WorkloadKind::Skewed,
            config.seed,
        );
        let first_number = config.initial_tuples as u64 + 1_000;
        let scheduler = SchedulerConfig::with_tracker(TrackerKind::Precise)
            .with_policy(SchedulingPolicy::StepRoundRobin)
            .with_frontier_delay_rounds(3);

        let mut reference = ConcurrentRun::new(
            fixture.initial_db.clone(),
            fixture.mappings.clone(),
            ops.clone(),
            first_number,
            scheduler,
        );
        let ref_metrics = reference.run(&mut RandomResolver::seeded(99)).unwrap();
        let ref_stats = reference.update_stats();

        let mut run = ParallelRun::new(
            fixture.initial_db.clone(),
            fixture.mappings.clone(),
            ops,
            first_number,
            scheduler.with_workers(4).with_speculation(SpeculationMode::Eager),
        );
        let metrics = run.run(&mut RandomResolver::seeded(99)).unwrap();
        assert_eq!(
            metrics.speculations_started,
            metrics.speculations_committed + metrics.speculations_discarded,
            "{label}: speculation balance"
        );
        assert_eq!(metrics.steps, ref_metrics.steps, "{label}: steps");
        assert_eq!(metrics.aborts, ref_metrics.aborts, "{label}: aborts");
        assert_eq!(metrics.changes, ref_metrics.changes, "{label}: changes");
        assert_eq!(run.update_stats(), ref_stats, "{label}: per-update stats");
        let (db, mappings, _) = run.into_parts();
        let (ref_db, _, _) = reference.into_parts();
        let render = |db: &youtopia::Database| {
            let mut out = String::new();
            for relation in db.catalog().relation_ids() {
                out.push_str(&format!(
                    "{relation:?}: {:?}\n",
                    db.scan(relation, UpdateId::OMNISCIENT)
                ));
            }
            out.push_str(&format!("nulls: {}\n", db.null_counter()));
            out
        };
        assert_eq!(render(&db), render(&ref_db), "{label}: final database state");
        assert!(satisfies_all(&db.snapshot(UpdateId::OMNISCIENT), &mappings), "{label}");
    });
}

/// Several back-to-back seeds at a smaller size: schedule diversity matters
/// more than workload volume for racing the abort machinery.
#[test]
#[ignore = "multi-thread stress lane: run with `cargo test --release -- --ignored`"]
fn free_running_seed_sweep() {
    for seed in 10..16u64 {
        stress_once(
            seed,
            if seed % 2 == 0 { TrackerKind::Coarse } else { TrackerKind::Precise },
            if seed % 2 == 0 { WorkloadKind::Mixed } else { WorkloadKind::Skewed },
            SchedulingPolicy::StepRoundRobin,
            60,
        );
    }
}
