//! # Youtopia — cooperative update exchange (VLDB 2009), reproduced in Rust
//!
//! This crate is the facade of the workspace reproducing *Cooperative Update
//! Exchange in the Youtopia System* (Kot & Koch, VLDB 2009). It re-exports the
//! public API of the five underlying crates:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`storage`] | `youtopia-storage` | labeled nulls, multiversion tuples, conjunctive queries |
//! | [`mappings`] | `youtopia-mappings` | tgds, parser, violations, violation queries, mapping graph |
//! | [`chase`] | `youtopia-core` | the cooperative forward/backward chase, frontier operations, resolvers |
//! | [`concurrency`] | `youtopia-concurrency` | the long-lived `ExchangeEngine`, optimistic schedulers, conflict detection, NAIVE/COARSE/PRECISE |
//! | [`replication`] | `youtopia-replication` | state-vector delta sync between replicated engines |
//! | [`workload`] | `youtopia-workload` | Section 6 generators, experiment runner, figure reports |
//!
//! The most common entry points are also re-exported at the top level. The
//! primary one is the long-lived [`ExchangeEngine`]: submit updates at any
//! time, surface blocked chases with
//! [`pending_frontiers`](ExchangeEngine::pending_frontiers), resume them with
//! [`answer`](ExchangeEngine::answer):
//!
//! ```
//! use youtopia::{
//!     satisfies_all, Database, EngineBuilder, InitialOp, MappingSet, UpdateId, Value,
//! };
//!
//! let mut db = Database::new();
//! db.add_relation("C", ["city"]).unwrap();
//! db.add_relation("S", ["code", "location", "city_served"]).unwrap();
//! let mut mappings = MappingSet::new();
//! mappings.add_parsed(db.catalog(), "sigma1: C(c) -> exists a, l. S(a, l, c)").unwrap();
//!
//! // A long-lived service: its worker pool outlives any one update.
//! let c = db.relation_id("C").unwrap();
//! let engine = EngineBuilder::new().build(db, mappings).unwrap();
//! let handle = engine
//!     .submit(InitialOp::Insert { relation: c, values: vec![Value::constant("Ithaca")] })
//!     .unwrap();
//! // σ1's repair is deterministic here (S is empty), so no frontier question
//! // arises; a blocked chase would appear in `engine.pending_frontiers()`
//! // until `engine.answer(token, decision)` resumed it.
//! let report = handle.wait().unwrap();
//! assert!(report.terminated);
//! let (db, mappings, metrics) = engine.shutdown();
//! assert_eq!(metrics.workload_size, 1);
//! assert!(satisfies_all(&db.snapshot(UpdateId::OMNISCIENT), &mappings));
//! ```
//!
//! The one-update-at-a-time [`UpdateExchange`] facade survives as a thin
//! engine client (see `examples/quickstart.rs`), and `examples/live_session.rs`
//! walks the full submit → pending → answer lifecycle.
//!
//! See `examples/` for runnable walk-throughs of the paper's scenarios and
//! `crates/bench` for the Figure 3 / Figure 4 harnesses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The relational storage substrate (re-export of `youtopia-storage`).
pub use youtopia_storage as storage;

/// Schema mappings and violations (re-export of `youtopia-mappings`).
pub use youtopia_mappings as mappings;

/// The cooperative chase (re-export of `youtopia-core`).
pub use youtopia_core as chase;

/// Optimistic concurrency control (re-export of `youtopia-concurrency`).
pub use youtopia_concurrency as concurrency;

/// State-vector delta sync between replicated engines (re-export of
/// `youtopia-replication`).
pub use youtopia_replication as replication;

/// Synthetic workloads and the Section 6 experiment harness (re-export of
/// `youtopia-workload`).
pub use youtopia_workload as workload;

#[allow(deprecated)] // kept for existing `with_config` callers
pub use youtopia_concurrency::ExchangeConfig;
pub use youtopia_concurrency::{
    AnswerOutcome, ClientId, ConcurrentRun, DurabilityConfig, EngineBuilder, EngineConfig,
    EngineError, ExchangeEngine, ParallelRun, Priority, RecoveryError, ResolverPump, RetryAfter,
    RunMetrics, SchedulerConfig, SpeculationMode, SubmitError, SweepReport, TrackerKind,
    UpdateExchange, UpdateHandle, UpdateStatus, ViolationIndexStats,
};
pub use youtopia_core::{
    AutoDecision, ChaseError, EscalationPolicy, ExpandResolver, FrontierDecision, FrontierRequest,
    FrontierResolver, FrontierToken, InitialOp, LookupError, PendingFrontier, PositiveAction,
    RandomResolver, ResolutionOrigin, ScriptedResolver, UnifyResolver, UpdateExecution,
    UpdateReport, UpdateState, ViolationStateMode,
};
pub use youtopia_mappings::{
    find_violations, satisfies_all, MappingGraph, MappingSet, Tgd, Violation, ViolationKind,
};
pub use youtopia_replication::{
    EventStamp, LinkFaults, NodeId, ReplicaNode, ReplicaSet, StateVector, SyncError, SyncReport,
    Topology,
};
pub use youtopia_storage::{
    DataView, Database, NullId, RelationId, Snapshot, Symbol, Tuple, TupleId, UpdateId, Value,
    Write,
};
pub use youtopia_workload::{
    run_experiment, run_million_user_day, ArrivalProcess, ExperimentConfig, LatencySummary,
    ScenarioConfig, ScenarioReport, WorkloadKind,
};
