//! # youtopia-bench
//!
//! Benchmarks and figure-regeneration harnesses for the Youtopia reproduction.
//!
//! * The `fig3` and `fig4` binaries regenerate the three panels of Figures 3
//!   and 4 (number of aborts, number of cascading abort requests, slowdown of
//!   `PRECISE`) on the all-insert and mixed workloads respectively. By default
//!   they run a proportionally scaled-down configuration; pass `--paper` to
//!   use the paper's exact parameters (100 relations, 10 000 initial tuples,
//!   500 updates, 100 runs per point — this takes a long time).
//! * The Criterion benches under `benches/` cover the building blocks: chase
//!   throughput, violation-query evaluation, conflict checking and the
//!   relative overhead of the three dependency trackers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use youtopia_concurrency::TrackerKind;
use youtopia_workload::{ExperimentConfig, WorkloadKind};

/// Command-line options shared by the `fig3` and `fig4` binaries.
#[derive(Clone, Debug, PartialEq)]
pub struct FigureOptions {
    /// The experiment configuration to run.
    pub config: ExperimentConfig,
    /// Trackers to include.
    pub trackers: Vec<TrackerKind>,
    /// Also print the CSV series after the text tables.
    pub csv: bool,
}

impl Default for FigureOptions {
    fn default() -> Self {
        FigureOptions {
            config: ExperimentConfig::quick(),
            trackers: vec![TrackerKind::Coarse, TrackerKind::Precise, TrackerKind::Naive],
            csv: false,
        }
    }
}

/// Parses the command-line arguments of the figure binaries.
///
/// Supported flags:
///
/// * `--paper` — use the paper's full-scale parameters.
/// * `--quick` — use the scaled-down defaults (the default).
/// * `--runs N` — override the number of runs per data point.
/// * `--updates N` — override the workload size.
/// * `--seed N` — override the base random seed.
/// * `--no-naive` — skip the `NAIVE` tracker (it dominates run time at higher
///   densities).
/// * `--threads N` — worker threads for the sweep (0 = one per core, the
///   default). Results are identical at any thread count.
/// * `--chase-threads N` — worker threads for the chase scheduler inside each
///   run (0 = the single-threaded reference scheduler, the default; `N ≥ 1`
///   uses the deterministic `ParallelRun`). Results are identical at any
///   value.
/// * `--csv` — also print CSV output.
pub fn parse_figure_options<I: IntoIterator<Item = String>>(
    args: I,
) -> Result<FigureOptions, String> {
    let mut options = FigureOptions::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--paper" => options.config = ExperimentConfig::paper(),
            "--quick" => options.config = ExperimentConfig::quick(),
            "--csv" => options.csv = true,
            "--no-naive" => options.trackers.retain(|t| *t != TrackerKind::Naive),
            "--runs" => {
                let value = iter.next().ok_or("--runs needs a value")?;
                options.config.runs =
                    value.parse().map_err(|_| format!("bad --runs value `{value}`"))?;
            }
            "--updates" => {
                let value = iter.next().ok_or("--updates needs a value")?;
                options.config.workload_updates =
                    value.parse().map_err(|_| format!("bad --updates value `{value}`"))?;
            }
            "--seed" => {
                let value = iter.next().ok_or("--seed needs a value")?;
                options.config.seed =
                    value.parse().map_err(|_| format!("bad --seed value `{value}`"))?;
            }
            "--threads" => {
                let value = iter.next().ok_or("--threads needs a value")?;
                options.config.worker_threads =
                    value.parse().map_err(|_| format!("bad --threads value `{value}`"))?;
            }
            "--chase-threads" => {
                let value = iter.next().ok_or("--chase-threads needs a value")?;
                options.config.chase_workers =
                    value.parse().map_err(|_| format!("bad --chase-threads value `{value}`"))?;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    options.config.validate()?;
    Ok(options)
}

/// Runs one figure end to end and returns the rendered report.
pub fn run_figure(
    options: &FigureOptions,
    kind: WorkloadKind,
    name: &str,
) -> Result<String, String> {
    let mut progress = |point: &youtopia_workload::ExperimentPoint| {
        eprintln!(
            "  [{name}] {} mappings, {:>7}: aborts={:.1} cascading={:.1}",
            point.mappings,
            point.tracker.name(),
            point.avg.aborts,
            point.avg.cascading_abort_requests
        );
    };
    let results = youtopia_workload::run_experiment(
        &options.config,
        kind,
        &options.trackers,
        Some(&mut progress),
    )
    .map_err(|e| e.to_string())?;
    let mut out = youtopia_workload::render_figure(&results, name);
    if options.csv {
        out.push_str("\nCSV:\n");
        out.push_str(&youtopia_workload::to_csv(&results));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn default_options_use_the_quick_preset() {
        let options = parse_figure_options(args(&[])).unwrap();
        assert_eq!(options.config, ExperimentConfig::quick());
        assert_eq!(options.trackers.len(), 3);
        assert!(!options.csv);
    }

    #[test]
    fn paper_flag_and_overrides() {
        let options = parse_figure_options(args(&[
            "--paper",
            "--runs",
            "2",
            "--updates",
            "50",
            "--seed",
            "9",
        ]))
        .unwrap();
        assert_eq!(options.config.relations, 100);
        assert_eq!(options.config.runs, 2);
        assert_eq!(options.config.workload_updates, 50);
        assert_eq!(options.config.seed, 9);
    }

    #[test]
    fn no_naive_and_csv_flags() {
        let options = parse_figure_options(args(&["--no-naive", "--csv"])).unwrap();
        assert_eq!(options.trackers, vec![TrackerKind::Coarse, TrackerKind::Precise]);
        assert!(options.csv);
    }

    #[test]
    fn threads_flag_sets_worker_count() {
        let options = parse_figure_options(args(&["--threads", "3"])).unwrap();
        assert_eq!(options.config.worker_threads, 3);
        assert!(parse_figure_options(args(&["--threads", "x"])).is_err());
        assert!(parse_figure_options(args(&["--threads"])).is_err());
    }

    #[test]
    fn chase_threads_flag_sets_scheduler_workers() {
        let options = parse_figure_options(args(&["--chase-threads", "4"])).unwrap();
        assert_eq!(options.config.chase_workers, 4);
        assert_eq!(options.config.worker_threads, 0, "sweep threads are independent");
        assert!(parse_figure_options(args(&["--chase-threads", "x"])).is_err());
        assert!(parse_figure_options(args(&["--chase-threads"])).is_err());
    }

    #[test]
    fn bad_arguments_are_rejected() {
        assert!(parse_figure_options(args(&["--bogus"])).is_err());
        assert!(parse_figure_options(args(&["--runs"])).is_err());
        assert!(parse_figure_options(args(&["--runs", "x"])).is_err());
        assert!(parse_figure_options(args(&["--runs", "0"])).is_err());
    }

    #[test]
    fn workload_kind_helpers_are_wired() {
        // Sanity: the two binaries map to the two workloads of Section 6.
        assert_eq!(WorkloadKind::AllInserts.delete_fraction(), 0.0);
        assert!(WorkloadKind::Mixed.delete_fraction() > 0.0);
    }
}
