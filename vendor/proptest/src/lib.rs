//! Offline, API-compatible stub of the parts of `proptest 1` this workspace
//! uses. See `vendor/README.md` for scope and caveats.
//!
//! Design: generation only — no shrinking, no failure-case persistence. Every
//! test gets a [`test_runner::TestRng`] seeded from a hash of its name, so a
//! failing case reproduces exactly on re-run without a regression file.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop` namespace (`prop::collection::vec(...)` etc.).
    pub use crate as prop;
}

/// Defines property tests. Supports the subset of the real macro's grammar the
/// workspace uses: an optional `#![proptest_config(expr)]` header followed by
/// `#[test]` functions whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(err) = outcome {
                        ::std::panic!(
                            "proptest: test {} failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, err
                        );
                    }
                }
            }
        )*
    };
}

/// Builds a strategy that picks one of the argument strategies uniformly at
/// random. All arms must produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (not aborting the process) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "{} (`{:?}` != `{:?}`)",
                    ::std::format!($($fmt)*), left, right
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, "assertion failed: `{:?}` != `{:?}`", left, right);
    }};
}
