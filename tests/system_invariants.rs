//! Cross-crate property tests for the system-level invariants the paper relies
//! on: every terminated update leaves the repository consistent, cooperative
//! chases reach their frontier in finitely many deterministic steps
//! (Lemma 2.5), concurrent runs under every tracker restore consistency, and
//! the tracker hierarchy NAIVE ⊇ COARSE ⊇ PRECISE holds for cascading abort
//! requests on identical schedules.

use proptest::prelude::*;

use youtopia::{
    satisfies_all, ConcurrentRun, Database, InitialOp, MappingSet, RandomResolver, SchedulerConfig,
    TrackerKind, UpdateExchange, UpdateId, Value,
};

/// A small travel-flavoured repository with the cyclic σ1/σ2 pair and σ3.
fn repository() -> (Database, MappingSet) {
    let mut db = Database::new();
    db.add_relation("C", ["city"]).unwrap();
    db.add_relation("S", ["code", "location", "city_served"]).unwrap();
    db.add_relation("A", ["location", "name"]).unwrap();
    db.add_relation("T", ["attraction", "company", "tour_start"]).unwrap();
    db.add_relation("R", ["company", "attraction", "review"]).unwrap();
    let mut mappings = MappingSet::new();
    mappings
        .add_parsed_many(
            db.catalog(),
            "
            sigma1: C(c) -> exists a, l. S(a, l, c)
            sigma2: S(a, c, c2) -> C(c) & C(c2)
            sigma3: A(l, n) & T(n, c, cs) -> exists r. R(c, n, r)
            ",
        )
        .unwrap();
    (db, mappings)
}

/// One randomly chosen user-level operation description.
#[derive(Clone, Debug)]
enum OpSpec {
    InsertCity(u8),
    InsertAttraction(u8),
    InsertTour(u8, u8),
    DeleteSomeReview(u8),
}

fn op_strategy() -> impl Strategy<Value = OpSpec> {
    prop_oneof![
        (0u8..12).prop_map(OpSpec::InsertCity),
        (0u8..8).prop_map(OpSpec::InsertAttraction),
        ((0u8..8), (0u8..6)).prop_map(|(a, c)| OpSpec::InsertTour(a, c)),
        (0u8..8).prop_map(OpSpec::DeleteSomeReview),
    ]
}

fn apply_spec(exchange: &mut UpdateExchange, spec: &OpSpec, user: &mut RandomResolver) {
    match spec {
        OpSpec::InsertCity(i) => {
            exchange.insert_constants("C", &[&format!("city{i}")], user).unwrap();
        }
        OpSpec::InsertAttraction(i) => {
            exchange
                .insert_constants("A", &[&format!("loc{i}"), &format!("attr{i}")], user)
                .unwrap();
        }
        OpSpec::InsertTour(a, c) => {
            exchange
                .insert_constants("T", &[&format!("attr{a}"), &format!("co{c}"), "somewhere"], user)
                .unwrap();
        }
        OpSpec::DeleteSomeReview(i) => {
            let r = exchange.db().relation_id("R").unwrap();
            let rows = exchange.db().scan(r, UpdateId::OMNISCIENT);
            if rows.is_empty() {
                return;
            }
            let victim = rows[*i as usize % rows.len()].0;
            exchange.delete("R", victim, user).unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sequential update exchange: after every terminated update the database
    /// satisfies every mapping, no matter what the (random) user answered.
    #[test]
    fn sequential_updates_always_restore_consistency(ops in prop::collection::vec(op_strategy(), 1..12), seed in 0u64..1000) {
        let (db, mappings) = repository();
        let mut exchange = UpdateExchange::new(db, mappings);
        let mut user = RandomResolver::seeded(seed);
        for spec in &ops {
            apply_spec(&mut exchange, spec, &mut user);
            prop_assert!(exchange.is_consistent(), "inconsistent after {spec:?}");
        }
    }

    /// Concurrent runs terminate and restore consistency under every tracker,
    /// and the final database never contains a violation.
    #[test]
    fn concurrent_runs_restore_consistency(n_updates in 2usize..10, seed in 0u64..500) {
        let (mut db, mappings) = repository();
        // A little seed data so deletes and joins have something to work with.
        db.insert_by_name("A", &["loc0", "attr0"], UpdateId(0));
        db.insert_by_name("T", &["attr0", "co0", "somewhere"], UpdateId(0));
        db.insert_by_name("R", &["co0", "attr0", "ok"], UpdateId(0));
        let c = db.relation_id("C").unwrap();
        let t = db.relation_id("T").unwrap();
        let r = db.relation_id("R").unwrap();
        let review = db.scan(r, UpdateId::OMNISCIENT)[0].0;

        let mut ops = Vec::new();
        for i in 0..n_updates {
            ops.push(match i % 3 {
                0 => InitialOp::Insert { relation: c, values: vec![Value::constant(&format!("city{i}"))] },
                1 => InitialOp::Insert {
                    relation: t,
                    values: vec![
                        Value::constant("attr0"),
                        Value::constant(&format!("newco{i}")),
                        Value::constant("elsewhere"),
                    ],
                },
                _ => InitialOp::Delete { relation: r, tuple: review },
            });
        }

        for tracker in [TrackerKind::Naive, TrackerKind::Coarse, TrackerKind::Precise] {
            let config = SchedulerConfig::with_tracker(tracker).with_frontier_delay_rounds(seed as usize % 3);
            let mut run = ConcurrentRun::new(db.clone(), mappings.clone(), ops.clone(), 10, config);
            let mut user = RandomResolver::seeded(seed);
            let metrics = run.run(&mut user).unwrap();
            prop_assert_eq!(metrics.workload_size, n_updates);
            let (final_db, mappings, _) = run.into_parts();
            prop_assert!(satisfies_all(&final_db.snapshot(UpdateId::OMNISCIENT), &mappings));
        }
    }

    /// On identical schedules, NAIVE requests at least as many cascading
    /// aborts as COARSE, which requests at least as many as PRECISE — the
    /// ordering the paper's Figures 3 and 4 demonstrate experimentally.
    #[test]
    fn tracker_hierarchy_on_identical_schedules(seed in 0u64..200) {
        let (mut db, mappings) = repository();
        db.insert_by_name("A", &["loc0", "attr0"], UpdateId(0));
        db.insert_by_name("T", &["attr0", "co0", "somewhere"], UpdateId(0));
        db.insert_by_name("R", &["co0", "attr0", "ok"], UpdateId(0));
        let c = db.relation_id("C").unwrap();
        let t = db.relation_id("T").unwrap();
        let r = db.relation_id("R").unwrap();
        let review = db.scan(r, UpdateId::OMNISCIENT)[0].0;
        let ops = vec![
            InitialOp::Delete { relation: r, tuple: review },
            InitialOp::Insert {
                relation: t,
                values: vec![Value::constant("attr0"), Value::constant("co1"), Value::constant("x")],
            },
            InitialOp::Insert { relation: c, values: vec![Value::constant("cityA")] },
            InitialOp::Insert { relation: c, values: vec![Value::constant("cityB")] },
        ];

        let run_with = |tracker| {
            let config = SchedulerConfig::with_tracker(tracker).with_frontier_delay_rounds(2);
            let mut run = ConcurrentRun::new(db.clone(), mappings.clone(), ops.clone(), 10, config);
            let mut user = RandomResolver::seeded(seed);
            run.run(&mut user).unwrap()
        };
        let naive = run_with(TrackerKind::Naive);
        let coarse = run_with(TrackerKind::Coarse);
        let precise = run_with(TrackerKind::Precise);
        prop_assert!(naive.cascading_abort_requests >= coarse.cascading_abort_requests);
        prop_assert!(coarse.cascading_abort_requests >= precise.cascading_abort_requests);
    }
}

/// Lemma 2.5: a forward chase either terminates or reaches a point where it
/// must wait for a frontier operation after finitely many deterministic steps.
/// We exercise it by driving executions manually and bounding the number of
/// consecutive `Ready` steps between frontier requests.
#[test]
fn lemma_2_5_deterministic_strata_are_finite() {
    use youtopia::UpdateExecution;
    let (mut db, mappings) = repository();
    let c = db.relation_id("C").unwrap();
    for i in 0..20 {
        let mut exec = UpdateExecution::new(
            UpdateId(1 + i),
            InitialOp::Insert { relation: c, values: vec![Value::constant(&format!("city{i}"))] },
        );
        let mut consecutive_ready_steps = 0usize;
        loop {
            match exec.state() {
                youtopia::UpdateState::Terminated => break,
                youtopia::UpdateState::AwaitingFrontier => {
                    // End of a deterministic stratum: answer and continue.
                    consecutive_ready_steps = 0;
                    let request = exec.pending_frontier().unwrap().clone();
                    let mut user = RandomResolver::seeded(42 + i);
                    let decision = {
                        let snap = db.snapshot(UpdateId(1 + i));
                        youtopia::FrontierResolver::resolve(&mut user, &snap, &request)
                    };
                    exec.resolve_frontier(&mappings, decision).unwrap();
                }
                youtopia::UpdateState::Ready => {
                    exec.step(&mut db, &mappings).unwrap();
                    consecutive_ready_steps += 1;
                    assert!(
                        consecutive_ready_steps < 500,
                        "a deterministic stratum ran for 500 steps without stopping"
                    );
                }
            }
        }
    }
    assert!(satisfies_all(&db.snapshot(UpdateId::OMNISCIENT), &mappings));
}
