//! Frontier resolvers: the "human in the loop" abstraction.
//!
//! The chase blocks on frontier requests until a user answers them. A
//! [`FrontierResolver`] supplies those answers. Examples and interactive
//! front-ends implement it with real user input; the experiments of Section 6
//! use [`RandomResolver`], which "chooses an option uniformly at random among
//! all available alternatives", and which has the additional benefit of making
//! every chase terminate even under cyclic mappings.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use youtopia_storage::DataView;

use crate::frontier::{FrontierDecision, FrontierRequest, PositiveAction};

/// Supplies frontier decisions for blocked chases.
pub trait FrontierResolver {
    /// Decides how to resolve `request`. `view` is the blocked update's
    /// current snapshot of the database, provided so resolvers can inspect
    /// context (provenance, candidate contents, …).
    fn resolve(&mut self, view: &dyn DataView, request: &FrontierRequest) -> FrontierDecision;
}

/// The simulated user of Section 6: every choice is made uniformly at random
/// among the legal alternatives.
///
/// * For each positive frontier tuple the alternatives are *expand* plus one
///   *unify* per more-specific candidate.
/// * For a negative frontier the resolver deletes a single candidate chosen
///   uniformly at random (the minimal repair).
///
/// Because a unification is chosen sooner or later on every forward chase
/// path, all chases terminate with probability 1 even when the mappings are
/// cyclic.
#[derive(Clone, Debug)]
pub struct RandomResolver {
    rng: StdRng,
    /// Probability weight adjustments are not used by the paper; kept at the
    /// uniform default.
    expand_bias: f64,
}

impl RandomResolver {
    /// Creates a resolver with the given seed (experiments are reproducible
    /// under a fixed seed).
    pub fn seeded(seed: u64) -> RandomResolver {
        RandomResolver { rng: StdRng::seed_from_u64(seed), expand_bias: 0.0 }
    }

    /// Creates a resolver that favours expansion with the given extra
    /// probability mass (0.0 = uniform, as in the paper). Used by ablation
    /// benchmarks to study chase length as a function of user behaviour.
    pub fn with_expand_bias(seed: u64, expand_bias: f64) -> RandomResolver {
        RandomResolver {
            rng: StdRng::seed_from_u64(seed),
            expand_bias: expand_bias.clamp(0.0, 1.0),
        }
    }
}

impl FrontierResolver for RandomResolver {
    fn resolve(&mut self, _view: &dyn DataView, request: &FrontierRequest) -> FrontierDecision {
        match request {
            FrontierRequest::Positive(pf) => {
                let mut actions = Vec::with_capacity(pf.tuples.len());
                for tuple in &pf.tuples {
                    if tuple.candidates.is_empty() {
                        actions.push(PositiveAction::Expand);
                        continue;
                    }
                    // Alternatives: expand, or unify with any of the candidates.
                    let alternatives = tuple.candidates.len() + 1;
                    let expand = if self.expand_bias > 0.0 {
                        self.rng.gen_bool(self.expand_bias)
                    } else {
                        self.rng.gen_range(0..alternatives) == 0
                    };
                    if expand {
                        actions.push(PositiveAction::Expand);
                    } else {
                        let (with, _) = tuple
                            .candidates
                            .choose(&mut self.rng)
                            .expect("candidates checked non-empty");
                        actions.push(PositiveAction::Unify { with: *with });
                    }
                }
                FrontierDecision::Positive(actions)
            }
            FrontierRequest::Negative(nf) => {
                let (_, id, _) =
                    nf.candidates.choose(&mut self.rng).expect("negative frontier is never empty");
                FrontierDecision::Negative(vec![*id])
            }
        }
    }
}

/// A resolver that always expands positive frontier tuples and deletes every
/// negative frontier candidate. This mimics the *classical* chase (which never
/// unifies); under cyclic mappings it may never terminate, which is exactly
/// the behaviour Youtopia's cooperative model avoids. Useful in tests and in
/// the ablation benchmarks.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExpandResolver;

impl FrontierResolver for ExpandResolver {
    fn resolve(&mut self, _view: &dyn DataView, request: &FrontierRequest) -> FrontierDecision {
        match request {
            FrontierRequest::Positive(pf) => FrontierDecision::expand_all(pf),
            FrontierRequest::Negative(nf) => {
                FrontierDecision::Negative(nf.candidates.iter().map(|(_, id, _)| *id).collect())
            }
        }
    }
}

/// A resolver that always unifies with the first candidate when one exists
/// (and expands otherwise), and deletes only the first negative candidate.
/// This is the most conservative user: it adds as little data as possible.
#[derive(Clone, Copy, Debug, Default)]
pub struct UnifyResolver;

impl FrontierResolver for UnifyResolver {
    fn resolve(&mut self, _view: &dyn DataView, request: &FrontierRequest) -> FrontierDecision {
        match request {
            FrontierRequest::Positive(pf) => FrontierDecision::Positive(
                pf.tuples
                    .iter()
                    .map(|t| match t.candidates.first() {
                        Some((id, _)) => PositiveAction::Unify { with: *id },
                        None => PositiveAction::Expand,
                    })
                    .collect(),
            ),
            FrontierRequest::Negative(nf) => FrontierDecision::delete_first(nf),
        }
    }
}

/// A resolver that replays a pre-recorded script of decisions, in order.
/// Useful for tests and for reproducing an interactive session. Panics if the
/// script runs out.
#[derive(Clone, Debug, Default)]
pub struct ScriptedResolver {
    decisions: std::collections::VecDeque<FrontierDecision>,
}

impl ScriptedResolver {
    /// Creates a scripted resolver from a decision sequence.
    pub fn new(decisions: impl IntoIterator<Item = FrontierDecision>) -> ScriptedResolver {
        ScriptedResolver { decisions: decisions.into_iter().collect() }
    }

    /// Remaining scripted decisions.
    pub fn remaining(&self) -> usize {
        self.decisions.len()
    }
}

impl FrontierResolver for ScriptedResolver {
    fn resolve(&mut self, _view: &dyn DataView, _request: &FrontierRequest) -> FrontierDecision {
        self.decisions.pop_front().expect("scripted resolver ran out of decisions")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::{FrontierTuple, NegativeFrontier, PositiveFrontier};
    use youtopia_mappings::{MappingId, Violation, ViolationKind};
    use youtopia_storage::{Bindings, Database, RelationId, TupleId, UpdateId, Value};

    fn dummy_violation() -> Violation {
        Violation {
            mapping: MappingId(0),
            kind: ViolationKind::Lhs,
            lhs_bindings: Bindings::new(),
            witness: vec![],
        }
    }

    fn positive_request(candidates: usize) -> FrontierRequest {
        FrontierRequest::Positive(PositiveFrontier {
            mapping: MappingId(0),
            violation: dummy_violation(),
            tuples: vec![FrontierTuple {
                relation: RelationId(0),
                values: vec![Value::constant("a")].into(),
                fresh_nulls: vec![],
                candidates: (0..candidates)
                    .map(|i| (TupleId(i as u64), vec![Value::constant("c")].into()))
                    .collect(),
            }],
        })
    }

    fn negative_request() -> FrontierRequest {
        FrontierRequest::Negative(NegativeFrontier {
            mapping: MappingId(0),
            violation: dummy_violation(),
            candidates: vec![
                (0, TupleId(1), vec![Value::constant("a")].into()),
                (1, TupleId(2), vec![Value::constant("b")].into()),
            ],
        })
    }

    fn view() -> Database {
        Database::new()
    }

    #[test]
    fn random_resolver_is_deterministic_under_a_seed() {
        let db = view();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        let request = positive_request(3);
        let d1: Vec<FrontierDecision> = (0..20)
            .map(|_| RandomResolver::seeded(42))
            .map(|mut r| r.resolve(&snap, &request))
            .collect();
        assert!(d1.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn random_resolver_explores_all_alternatives() {
        let db = view();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        let request = positive_request(2);
        let mut resolver = RandomResolver::seeded(7);
        let mut saw_expand = false;
        let mut saw_unify = false;
        for _ in 0..200 {
            match resolver.resolve(&snap, &request) {
                FrontierDecision::Positive(actions) => match &actions[0] {
                    PositiveAction::Expand => saw_expand = true,
                    PositiveAction::Unify { .. } => saw_unify = true,
                },
                _ => panic!("positive request"),
            }
        }
        assert!(saw_expand && saw_unify);
    }

    #[test]
    fn random_resolver_expands_when_there_are_no_candidates() {
        let db = view();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        let mut resolver = RandomResolver::seeded(1);
        match resolver.resolve(&snap, &positive_request(0)) {
            FrontierDecision::Positive(actions) => {
                assert_eq!(actions, vec![PositiveAction::Expand])
            }
            _ => panic!(),
        }
    }

    #[test]
    fn random_resolver_deletes_exactly_one_negative_candidate() {
        let db = view();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        let mut resolver = RandomResolver::seeded(3);
        match resolver.resolve(&snap, &negative_request()) {
            FrontierDecision::Negative(ids) => assert_eq!(ids.len(), 1),
            _ => panic!(),
        }
    }

    #[test]
    fn expand_and_unify_resolvers() {
        let db = view();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        match ExpandResolver.resolve(&snap, &positive_request(2)) {
            FrontierDecision::Positive(actions) => {
                assert_eq!(actions, vec![PositiveAction::Expand])
            }
            _ => panic!(),
        }
        match ExpandResolver.resolve(&snap, &negative_request()) {
            FrontierDecision::Negative(ids) => assert_eq!(ids.len(), 2),
            _ => panic!(),
        }
        match UnifyResolver.resolve(&snap, &positive_request(2)) {
            FrontierDecision::Positive(actions) => {
                assert!(matches!(actions[0], PositiveAction::Unify { .. }))
            }
            _ => panic!(),
        }
        match UnifyResolver.resolve(&snap, &negative_request()) {
            FrontierDecision::Negative(ids) => assert_eq!(ids, vec![TupleId(1)]),
            _ => panic!(),
        }
    }

    #[test]
    fn scripted_resolver_replays_in_order() {
        let db = view();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        let mut scripted = ScriptedResolver::new([
            FrontierDecision::Negative(vec![TupleId(1)]),
            FrontierDecision::Negative(vec![TupleId(2)]),
        ]);
        assert_eq!(scripted.remaining(), 2);
        assert_eq!(
            scripted.resolve(&snap, &negative_request()),
            FrontierDecision::Negative(vec![TupleId(1)])
        );
        assert_eq!(
            scripted.resolve(&snap, &negative_request()),
            FrontierDecision::Negative(vec![TupleId(2)])
        );
        assert_eq!(scripted.remaining(), 0);
    }

    #[test]
    fn expand_bias_forces_expansion() {
        let db = view();
        let snap = db.snapshot(UpdateId::OMNISCIENT);
        let mut resolver = RandomResolver::with_expand_bias(5, 1.0);
        for _ in 0..50 {
            match resolver.resolve(&snap, &positive_request(3)) {
                FrontierDecision::Positive(actions) => {
                    assert_eq!(actions, vec![PositiveAction::Expand])
                }
                _ => panic!(),
            }
        }
    }
}
