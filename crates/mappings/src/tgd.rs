//! Tuple-generating dependencies (mappings) and mapping sets.
//!
//! A mapping has the form `Φ(x̄, ȳ) → ∃z̄ Ψ(x̄, z̄)` (Section 2): `Φ` is a
//! conjunction of atoms over the *frontier* variables `x̄` and the LHS-only
//! variables `ȳ`; `Ψ` is a conjunction over `x̄` and the existential variables
//! `z̄`.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use youtopia_storage::{Atom, Catalog, RelationId, Symbol};

use crate::error::MappingError;
use crate::plans::CompiledPlans;

/// Identifier of a mapping within a [`MappingSet`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MappingId(pub u32);

impl fmt::Debug for MappingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "σ{}", self.0)
    }
}

impl fmt::Display for MappingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "σ{}", self.0)
    }
}

/// A tuple-generating dependency.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tgd {
    /// Mapping id (assigned by the owning [`MappingSet`]).
    pub id: MappingId,
    /// Human-readable name, e.g. `σ3`.
    pub name: String,
    /// Left-hand side atoms (the premise Φ).
    pub lhs: Vec<Atom>,
    /// Right-hand side atoms (the conclusion Ψ).
    pub rhs: Vec<Atom>,
    frontier_vars: Vec<Symbol>,
    lhs_only_vars: Vec<Symbol>,
    existential_vars: Vec<Symbol>,
}

impl Tgd {
    /// Builds a tgd and classifies its variables. Fails if either side is
    /// empty.
    pub fn new(
        id: MappingId,
        name: impl Into<String>,
        lhs: Vec<Atom>,
        rhs: Vec<Atom>,
    ) -> Result<Tgd, MappingError> {
        let name = name.into();
        if lhs.is_empty() {
            return Err(MappingError::EmptyLhs(name));
        }
        if rhs.is_empty() {
            return Err(MappingError::EmptyRhs(name));
        }
        let lhs_vars = youtopia_storage::variables_of(&lhs);
        let rhs_vars = youtopia_storage::variables_of(&rhs);
        let frontier_vars: Vec<Symbol> =
            lhs_vars.iter().copied().filter(|v| rhs_vars.contains(v)).collect();
        let lhs_only_vars: Vec<Symbol> =
            lhs_vars.iter().copied().filter(|v| !rhs_vars.contains(v)).collect();
        let existential_vars: Vec<Symbol> =
            rhs_vars.iter().copied().filter(|v| !lhs_vars.contains(v)).collect();
        Ok(Tgd { id, name, lhs, rhs, frontier_vars, lhs_only_vars, existential_vars })
    }

    /// The frontier (exported) variables `x̄`: variables occurring on both
    /// sides.
    pub fn frontier_vars(&self) -> &[Symbol] {
        &self.frontier_vars
    }

    /// Variables occurring only on the left-hand side (`ȳ`).
    pub fn lhs_only_vars(&self) -> &[Symbol] {
        &self.lhs_only_vars
    }

    /// Existentially quantified variables (`z̄`): right-hand side only.
    pub fn existential_vars(&self) -> &[Symbol] {
        &self.existential_vars
    }

    /// Relations mentioned on the left-hand side (with duplicates removed).
    pub fn lhs_relations(&self) -> Vec<RelationId> {
        dedup_relations(&self.lhs)
    }

    /// Relations mentioned on the right-hand side (with duplicates removed).
    pub fn rhs_relations(&self) -> Vec<RelationId> {
        dedup_relations(&self.rhs)
    }

    /// All relations mentioned by the mapping.
    pub fn relations(&self) -> Vec<RelationId> {
        let mut rels = self.lhs_relations();
        for r in self.rhs_relations() {
            if !rels.contains(&r) {
                rels.push(r);
            }
        }
        rels
    }

    /// Checks atom arities against the catalog.
    pub fn validate(&self, catalog: &Catalog) -> Result<(), MappingError> {
        for atom in self.lhs.iter().chain(self.rhs.iter()) {
            let schema = catalog
                .try_schema(atom.relation)
                .map_err(|_| MappingError::UnknownRelation(format!("{:?}", atom.relation)))?;
            if schema.arity() != atom.terms.len() {
                return Err(MappingError::AtomArityMismatch {
                    mapping: self.name.clone(),
                    relation: schema.name.clone(),
                    expected: schema.arity(),
                    actual: atom.terms.len(),
                });
            }
        }
        Ok(())
    }

    /// Whether the mapping is *cyclic on its own*, i.e. some relation appears
    /// on both sides (like the genealogical `Person(x) → ∃y Father(x,y) ∧
    /// Person(y)` example of Section 2.2).
    pub fn is_self_cyclic(&self) -> bool {
        let rhs = self.rhs_relations();
        self.lhs_relations().iter().any(|r| rhs.contains(r))
    }

    /// Pretty-prints the mapping using catalog names.
    pub fn display_with(&self, catalog: &Catalog) -> String {
        let lhs: Vec<String> = self.lhs.iter().map(|a| a.display_with(catalog)).collect();
        let rhs: Vec<String> = self.rhs.iter().map(|a| a.display_with(catalog)).collect();
        let exists = if self.existential_vars.is_empty() {
            String::new()
        } else {
            let vars: Vec<String> = self.existential_vars.iter().map(|v| v.to_string()).collect();
            format!("∃{} ", vars.join(","))
        };
        format!("{}: {} → {}{}", self.name, lhs.join(" ∧ "), exists, rhs.join(" ∧ "))
    }
}

fn dedup_relations(atoms: &[Atom]) -> Vec<RelationId> {
    let mut rels = Vec::new();
    for a in atoms {
        if !rels.contains(&a.relation) {
            rels.push(a.relation);
        }
    }
    rels
}

/// A set of mappings with per-relation indexes and a compiled-plan cache.
#[derive(Clone, Debug, Default)]
pub struct MappingSet {
    tgds: Vec<Tgd>,
    lhs_index: HashMap<RelationId, Vec<MappingId>>,
    rhs_index: HashMap<RelationId, Vec<MappingId>>,
    /// Precompiled violation-query skeletons, kept in sync by
    /// [`MappingSet::add`]. Behind an [`Arc`] so the many clones a long-lived
    /// engine makes of its mapping set (recovery, exchange facades, worker
    /// handoff) all share one compiled-plan cache instead of duplicating it
    /// per consumer; mutation is copy-on-write.
    plans: Arc<CompiledPlans>,
}

impl MappingSet {
    /// Creates an empty mapping set.
    pub fn new() -> MappingSet {
        MappingSet::default()
    }

    /// Adds a mapping built from its sides; assigns and returns its id.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        lhs: Vec<Atom>,
        rhs: Vec<Atom>,
    ) -> Result<MappingId, MappingError> {
        let id = MappingId(self.tgds.len() as u32);
        let tgd = Tgd::new(id, name, lhs, rhs)?;
        for rel in tgd.lhs_relations() {
            self.lhs_index.entry(rel).or_default().push(id);
        }
        for rel in tgd.rhs_relations() {
            self.rhs_index.entry(rel).or_default().push(id);
        }
        Arc::make_mut(&mut self.plans).add_mapping(&tgd);
        self.tgds.push(tgd);
        Ok(id)
    }

    /// Adds an already-constructed tgd, reassigning its id.
    pub fn add_tgd(&mut self, tgd: Tgd) -> Result<MappingId, MappingError> {
        self.add(tgd.name.clone(), tgd.lhs, tgd.rhs)
    }

    /// Looks a mapping up by id.
    pub fn get(&self, id: MappingId) -> &Tgd {
        &self.tgds[id.0 as usize]
    }

    /// Looks a mapping up by name.
    pub fn by_name(&self, name: &str) -> Option<&Tgd> {
        self.tgds.iter().find(|t| t.name == name)
    }

    /// Number of mappings.
    pub fn len(&self) -> usize {
        self.tgds.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tgds.is_empty()
    }

    /// Iterates over all mappings.
    pub fn iter(&self) -> impl Iterator<Item = &Tgd> {
        self.tgds.iter()
    }

    /// Mappings whose **left-hand side** mentions `relation` (candidates for
    /// new LHS-violations when a tuple of that relation appears).
    pub fn with_lhs_relation(&self, relation: RelationId) -> &[MappingId] {
        self.lhs_index.get(&relation).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Mappings whose **right-hand side** mentions `relation` (candidates for
    /// new RHS-violations when a tuple of that relation disappears).
    pub fn with_rhs_relation(&self, relation: RelationId) -> &[MappingId] {
        self.rhs_index.get(&relation).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The compiled violation plans of this set: per-(mapping, atom) query
    /// skeletons indexed by relation, precompiled when mappings are added so
    /// that each [`TupleChange`](youtopia_storage::TupleChange) dispatches
    /// straight to the plans that can possibly fire.
    pub fn plans(&self) -> &CompiledPlans {
        &self.plans
    }

    /// The shared handle to the compiled plans: cloning it is one reference
    /// count, so engine-scope consumers (one per worker, per facade, per
    /// recovery pass) can hold the cache without duplicating it.
    pub fn plans_arc(&self) -> Arc<CompiledPlans> {
        Arc::clone(&self.plans)
    }

    /// Validates every mapping against the catalog.
    pub fn validate(&self, catalog: &Catalog) -> Result<(), MappingError> {
        for t in &self.tgds {
            t.validate(catalog)?;
        }
        Ok(())
    }

    /// Restricts the set to its first `n` mappings (used by the Section 6
    /// experiments, whose mapping sets are monotonically increasing).
    pub fn prefix(&self, n: usize) -> MappingSet {
        let mut out = MappingSet::new();
        for t in self.tgds.iter().take(n) {
            out.add(t.name.clone(), t.lhs.clone(), t.rhs.clone()).expect("already validated");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_storage::{Database, Term};

    fn travel_catalog() -> Database {
        let mut db = Database::new();
        db.add_relation("C", ["city"]).unwrap();
        db.add_relation("S", ["code", "location", "city_served"]).unwrap();
        db.add_relation("A", ["location", "name"]).unwrap();
        db.add_relation("T", ["attraction", "company", "tour_start"]).unwrap();
        db.add_relation("R", ["company", "attraction", "review"]).unwrap();
        db
    }

    fn v(s: &str) -> Term {
        Term::var(s)
    }

    #[test]
    fn variable_classification() {
        let db = travel_catalog();
        let a = db.relation_id("A").unwrap();
        let t = db.relation_id("T").unwrap();
        let r = db.relation_id("R").unwrap();
        // σ3: A(l,n) ∧ T(n,c,cs) → ∃rev R(c,n,rev)
        let tgd = Tgd::new(
            MappingId(0),
            "σ3",
            vec![Atom::new(a, vec![v("l"), v("n")]), Atom::new(t, vec![v("n"), v("c"), v("cs")])],
            vec![Atom::new(r, vec![v("c"), v("n"), v("rev")])],
        )
        .unwrap();
        assert_eq!(tgd.frontier_vars(), &[Symbol::intern("n"), Symbol::intern("c")]);
        assert_eq!(tgd.lhs_only_vars(), &[Symbol::intern("l"), Symbol::intern("cs")]);
        assert_eq!(tgd.existential_vars(), &[Symbol::intern("rev")]);
        assert_eq!(tgd.lhs_relations(), vec![a, t]);
        assert_eq!(tgd.rhs_relations(), vec![r]);
        assert!(!tgd.is_self_cyclic());
        assert!(tgd.validate(db.catalog()).is_ok());
        let shown = tgd.display_with(db.catalog());
        assert!(shown.contains("A(l, n)"));
        assert!(shown.contains("∃rev"));
    }

    #[test]
    fn empty_sides_rejected() {
        let db = travel_catalog();
        let c = db.relation_id("C").unwrap();
        let atom = Atom::new(c, vec![v("x")]);
        assert!(matches!(
            Tgd::new(MappingId(0), "m", vec![], vec![atom.clone()]),
            Err(MappingError::EmptyLhs(_))
        ));
        assert!(matches!(
            Tgd::new(MappingId(0), "m", vec![atom], vec![]),
            Err(MappingError::EmptyRhs(_))
        ));
    }

    #[test]
    fn validate_catches_arity_mismatch() {
        let db = travel_catalog();
        let c = db.relation_id("C").unwrap();
        let s = db.relation_id("S").unwrap();
        let tgd = Tgd::new(
            MappingId(0),
            "bad",
            vec![Atom::new(c, vec![v("x")])],
            vec![Atom::new(s, vec![v("x"), v("y")])], // S has arity 3
        )
        .unwrap();
        assert!(matches!(
            tgd.validate(db.catalog()),
            Err(MappingError::AtomArityMismatch { expected: 3, actual: 2, .. })
        ));
    }

    #[test]
    fn self_cyclic_detection() {
        let mut db = Database::new();
        let p = db.add_relation("Person", ["name"]).unwrap();
        let f = db.add_relation("Father", ["child", "father"]).unwrap();
        let tgd = Tgd::new(
            MappingId(0),
            "anc",
            vec![Atom::new(p, vec![v("x")])],
            vec![Atom::new(f, vec![v("x"), v("y")]), Atom::new(p, vec![v("y")])],
        )
        .unwrap();
        assert!(tgd.is_self_cyclic());
        assert_eq!(tgd.relations(), vec![p, f]);
    }

    #[test]
    fn mapping_set_indexes_relations() {
        let db = travel_catalog();
        let c = db.relation_id("C").unwrap();
        let s = db.relation_id("S").unwrap();
        let mut set = MappingSet::new();
        // σ1: C(c) → ∃a,l S(a, l, c)
        let m1 = set
            .add(
                "σ1",
                vec![Atom::new(c, vec![v("c")])],
                vec![Atom::new(s, vec![v("a"), v("l"), v("c")])],
            )
            .unwrap();
        // σ2: S(a, c, c2) → C(c) ∧ C(c2)
        let m2 = set
            .add(
                "σ2",
                vec![Atom::new(s, vec![v("a"), v("c"), v("c2")])],
                vec![Atom::new(c, vec![v("c")]), Atom::new(c, vec![v("c2")])],
            )
            .unwrap();
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert_eq!(set.with_lhs_relation(c), &[m1]);
        assert_eq!(set.with_lhs_relation(s), &[m2]);
        assert_eq!(set.with_rhs_relation(s), &[m1]);
        assert_eq!(set.with_rhs_relation(c), &[m2]);
        assert_eq!(set.by_name("σ1").unwrap().id, m1);
        assert!(set.by_name("zzz").is_none());
        assert!(set.validate(db.catalog()).is_ok());

        let prefix = set.prefix(1);
        assert_eq!(prefix.len(), 1);
        assert_eq!(prefix.get(MappingId(0)).name, "σ1");
    }

    #[test]
    fn add_tgd_reassigns_id() {
        let db = travel_catalog();
        let c = db.relation_id("C").unwrap();
        let tgd = Tgd::new(
            MappingId(99),
            "m",
            vec![Atom::new(c, vec![v("x")])],
            vec![Atom::new(c, vec![v("x")])],
        )
        .unwrap();
        let mut set = MappingSet::new();
        let id = set.add_tgd(tgd).unwrap();
        assert_eq!(id, MappingId(0));
        assert_eq!(set.get(id).name, "m");
    }
}
