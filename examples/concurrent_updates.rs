//! Example 3.1: interference between concurrent updates, and how the
//! optimistic concurrency control prevents it.
//!
//! Two real-world events happen at the same time:
//!
//! * **u1** — company XYZ discontinues its Geneva Winery tours, so the owner
//!   of the review table deletes `R(XYZ, Geneva Winery, Great!)`. The backward
//!   chase cannot decide on its own whether the attraction or the tour should
//!   go, so it waits for a (slow) human.
//! * **u2** — a new conference, Math Conf, is scheduled in Syracuse, so
//!   `V(Syracuse, Math Conf)` is inserted. σ4 fires immediately and suggests
//!   the Geneva Winery excursion.
//!
//! If u1's user eventually deletes the *tour*, u2's excursion suggestion was
//! premature: it recommends a tour that no longer exists. The scheduler
//! detects that u1's deletion retroactively changes a violation query u2 had
//! already posed, aborts u2 (and, depending on the tracker, its
//! read-dependents), rolls its writes back and restarts it.
//!
//! Run with `cargo run --example concurrent_updates`.

use youtopia::chase::FrontierDecision;
use youtopia::{
    ConcurrentRun, Database, InitialOp, MappingSet, SchedulerConfig, ScriptedResolver, TrackerKind,
    UpdateId, Value,
};

fn figure2_fragment() -> (Database, MappingSet) {
    let mut db = Database::new();
    db.add_relation("A", ["location", "name"]).unwrap();
    db.add_relation("T", ["attraction", "company", "tour_start"]).unwrap();
    db.add_relation("R", ["company", "attraction", "review"]).unwrap();
    db.add_relation("V", ["city", "convention"]).unwrap();
    db.add_relation("E", ["convention", "attraction"]).unwrap();
    let mut mappings = MappingSet::new();
    mappings
        .add_parsed_many(
            db.catalog(),
            "
            sigma3: A(l, n) & T(n, c, cs) -> exists r. R(c, n, r)
            sigma4: V(cv, x) & T(n, c, cv) -> E(x, n)
            ",
        )
        .unwrap();
    let u = UpdateId(0);
    db.insert_by_name("A", &["Geneva", "Geneva Winery"], u);
    db.insert_by_name("T", &["Geneva Winery", "XYZ", "Syracuse"], u);
    db.insert_by_name("R", &["XYZ", "Geneva Winery", "Great!"], u);
    db.insert_by_name("V", &["Syracuse", "Science Conf"], u);
    db.insert_by_name("E", &["Science Conf", "Geneva Winery"], u);
    (db, mappings)
}

fn print_table(db: &Database, name: &str) {
    let rel = db.relation_id(name).unwrap();
    println!("  {name}:");
    for (_, data) in db.scan(rel, UpdateId::OMNISCIENT) {
        let row: Vec<String> = data.iter().map(|v| v.to_string()).collect();
        println!("    ({})", row.join(", "));
    }
}

fn run_with(tracker: TrackerKind) {
    let (db, mappings) = figure2_fragment();
    let r = db.relation_id("R").unwrap();
    let v = db.relation_id("V").unwrap();
    let t = db.relation_id("T").unwrap();
    let review = db.scan(r, UpdateId::OMNISCIENT)[0].0;
    let tour = db.scan(t, UpdateId::OMNISCIENT)[0].0;

    // u1 deletes the review, u2 inserts the new convention.
    let ops = vec![
        InitialOp::Delete { relation: r, tuple: review },
        InitialOp::Insert {
            relation: v,
            values: vec![Value::constant("Syracuse"), Value::constant("Math Conf")],
        },
    ];

    // The "slow human" of Example 3.1: the negative frontier operation arrives
    // only after u2 has already inserted its excursion suggestion
    // (frontier_delay_rounds), and it chooses to delete the *tour*.
    let config = SchedulerConfig::with_tracker(tracker).with_frontier_delay_rounds(3);
    let mut run = ConcurrentRun::new(db, mappings, ops, 1, config);
    let mut user = ScriptedResolver::new([FrontierDecision::Negative(vec![tour])]);
    let metrics = run.run(&mut user).expect("the run terminates");

    println!("tracker {tracker}:");
    println!(
        "  aborts = {}, direct conflicts = {}, cascading abort requests = {}",
        metrics.aborts, metrics.direct_conflict_requests, metrics.cascading_abort_requests
    );
    let (final_db, mappings, _) = run.into_parts();
    print_table(&final_db, "T");
    print_table(&final_db, "E");
    let consistent = youtopia::satisfies_all(&final_db.snapshot(UpdateId::OMNISCIENT), &mappings);
    println!("  final database satisfies all mappings: {consistent}");
    let e = final_db.relation_id("E").unwrap();
    let math_conf_suggestions = final_db
        .scan(e, UpdateId::OMNISCIENT)
        .into_iter()
        .filter(|(_, d)| d[0] == Value::constant("Math Conf"))
        .count();
    println!(
        "  Math Conf excursion suggestions surviving: {math_conf_suggestions} \
         (0 is correct — the tour was discontinued)\n"
    );
    assert!(consistent);
    assert_eq!(math_conf_suggestions, 0, "the premature suggestion must not survive");
}

fn main() {
    println!("== Example 3.1: u1 deletes a review while u2 schedules Math Conf ==\n");
    println!("Without concurrency control, u2 would insert E(Math Conf, Geneva Winery)");
    println!("based on a tour that u1's pending deletion is about to remove.\n");
    for tracker in [TrackerKind::Coarse, TrackerKind::Precise, TrackerKind::Naive] {
        run_with(tracker);
    }
    println!("All three trackers prevent the interference; they differ only in how many");
    println!("additional (cascading) aborts they request — which is exactly what the");
    println!("paper's Figures 3 and 4 measure at scale (see the fig3/fig4 binaries).");
}
