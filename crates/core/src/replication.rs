//! The replication vocabulary: origin-stamped events, state vectors and the
//! delta codec the engine-to-engine sync protocol ships over.
//!
//! Replication in Youtopia is **event shipping**, not tuple shipping. Every
//! node keeps one append-only event log per origin node; an event is either a
//! submitted update ([`ReplicationEvent::Submit`]) or a frontier answer
//! ([`ReplicationEvent::Answer`]). A [`StateVector`] summarises how much of
//! each origin's log a node holds, and a [`DeltaBatch`] — the y-crdt
//! `encode_state_as_update(state_vector)` move — carries exactly the per-origin
//! log suffixes the receiver is missing.
//!
//! Convergence rests on a total **canonical order**: every event carries a
//! Lamport timestamp, and events are ordered by `(lamport, origin)`
//! ([`EventStamp`]). A replica's rendered database is defined as the
//! deterministic serial fold of its event set in canonical order — so two
//! replicas holding the same event set render byte-identical databases no
//! matter which topology or delivery schedule got the events there.
//!
//! The byte encoding reuses the engine WAL's framing idioms: tagged
//! little-endian fields via [`ByteWriter`]/[`ByteReader`], the op/decision
//! payload codecs from [`crate::codec`], and a magic + version + CRC32 header
//! on every batch so a corrupted or foreign payload is rejected instead of
//! misapplied.

use std::collections::BTreeMap;
use std::fmt;

use youtopia_storage::wal::{crc32, ByteReader, ByteWriter, WalError};

use crate::codec::{decode_decision, decode_initial_op, encode_decision, encode_initial_op};
use crate::frontier::{FrontierDecision, ResolutionOrigin};
use crate::update::InitialOp;

/// Identifies one replica in a multi-node deployment (the
/// `youtopia-replication` crate's `ReplicaSet` assigns them densely).
///
/// Node ids are assigned by the operator (in tests: the harness) and must be
/// unique across the replica set; they break Lamport ties, so they also define
/// the canonical priority between genuinely concurrent events.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The canonical identity of one replication event: its Lamport timestamp
/// plus the node that produced it.
///
/// The derived ordering (lamport first, origin second) **is** the canonical
/// order of the replicated fold — field order matters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventStamp {
    /// Lamport timestamp: strictly greater than every stamp the producing
    /// node had observed when it created the event.
    pub lamport: u64,
    /// The producing node.
    pub origin: NodeId,
}

impl fmt::Display for EventStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.origin, self.lamport)
    }
}

/// One entry in a node's replicated event log.
///
/// The log position (origin node, index) addresses the event for the delta
/// protocol; the embedded `lamport` timestamp places it in the canonical
/// order. Submits carry the update's initial operation; answers carry the
/// frontier decision for the `position`-th question asked by the `target`
/// update, tagged with the [`ResolutionOrigin`] it was decided under so a
/// replayed answer is never re-asked (nor re-decided) on a peer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplicationEvent {
    /// A locally submitted update entering the exchange.
    Submit {
        /// Lamport timestamp of the submission.
        lamport: u64,
        /// The update's initial operation.
        op: InitialOp,
    },
    /// A frontier answer for a replicated update.
    Answer {
        /// Lamport timestamp of the answer.
        lamport: u64,
        /// Stamp of the `Submit` event this answer belongs to.
        target: EventStamp,
        /// Which question of the target update this answers: the decision is
        /// applied to the `position`-th frontier the update surfaces under
        /// the canonical fold (0-based).
        position: u32,
        /// The decision itself.
        decision: FrontierDecision,
        /// Who decided — replayed verbatim so peers account an auto-resolved
        /// answer as [`ResolutionOrigin::System`] too.
        origin: ResolutionOrigin,
    },
}

impl ReplicationEvent {
    /// The event's Lamport timestamp.
    pub fn lamport(&self) -> u64 {
        match self {
            ReplicationEvent::Submit { lamport, .. } => *lamport,
            ReplicationEvent::Answer { lamport, .. } => *lamport,
        }
    }

    /// The event's canonical stamp given the log it sits in.
    pub fn stamp(&self, log_origin: NodeId) -> EventStamp {
        EventStamp { lamport: self.lamport(), origin: log_origin }
    }
}

/// Per-origin log lengths: "how much of each node's event log I hold".
///
/// The replication handshake is exactly y-crdt's: a node sends its state
/// vector, the peer answers with a [`DeltaBatch`] of every log suffix the
/// vector is missing. Missing origins read as 0.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StateVector(BTreeMap<NodeId, u64>);

impl StateVector {
    /// The empty vector (knows nothing). `encode_deltas_since(&empty)` is a
    /// full log transfer.
    pub fn new() -> StateVector {
        StateVector::default()
    }

    /// Events held from `origin`'s log (its next expected sequence number).
    pub fn get(&self, origin: NodeId) -> u64 {
        self.0.get(&origin).copied().unwrap_or(0)
    }

    /// Records that `len` events of `origin`'s log are held.
    pub fn set(&mut self, origin: NodeId, len: u64) {
        if len == 0 {
            self.0.remove(&origin);
        } else {
            self.0.insert(origin, len);
        }
    }

    /// Pointwise maximum with `other` — the vector of a node that holds
    /// everything both vectors cover.
    pub fn merge(&mut self, other: &StateVector) {
        for (&origin, &len) in &other.0 {
            let mine = self.0.entry(origin).or_insert(0);
            *mine = (*mine).max(len);
        }
    }

    /// `true` when this vector holds at least everything `other` does.
    pub fn dominates(&self, other: &StateVector) -> bool {
        other.0.iter().all(|(&origin, &len)| self.get(origin) >= len)
    }

    /// Iterates `(origin, held_len)` pairs in origin order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.0.iter().map(|(&origin, &len)| (origin, len))
    }

    /// Total events held across all origins.
    pub fn total(&self) -> u64 {
        self.0.values().sum()
    }
}

impl fmt::Display for StateVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (origin, len)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{origin}:{len}")?;
        }
        write!(f, "}}")
    }
}

/// One origin's missing log suffix inside a [`DeltaBatch`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaEntry {
    /// Whose log this suffix belongs to.
    pub origin: NodeId,
    /// Log index of the first event in `events`.
    pub first_seq: u64,
    /// The consecutive events `origin`'s log holds from `first_seq` on.
    pub events: Vec<ReplicationEvent>,
}

/// "Everything you're missing": per-origin log suffixes computed against a
/// peer's [`StateVector`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaBatch {
    /// The suffixes, one per origin the receiver trails on (origin order).
    pub entries: Vec<DeltaEntry>,
}

impl DeltaBatch {
    /// `true` when the batch carries no events.
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(|e| e.events.is_empty())
    }

    /// Total events across all entries.
    pub fn event_count(&self) -> usize {
        self.entries.iter().map(|e| e.events.len()).sum()
    }
}

// ---------------------------------------------------------------------------
// Byte codec — WAL-framing idioms: magic, version, CRC32 over the payload.
// ---------------------------------------------------------------------------

/// Magic prefix of an encoded [`DeltaBatch`] ("YSYN").
const SYNC_MAGIC: u32 = 0x5953_594E;
/// Bumped on any incompatible layout change.
const SYNC_VERSION: u32 = 1;

const EV_SUBMIT: u8 = 0;
const EV_ANSWER: u8 = 1;

fn corrupt(reason: impl Into<String>) -> WalError {
    WalError::Corrupt { offset: 0, reason: reason.into() }
}

fn encode_event(event: &ReplicationEvent, out: &mut ByteWriter) {
    match event {
        ReplicationEvent::Submit { lamport, op } => {
            out.put_u8(EV_SUBMIT);
            out.put_u64(*lamport);
            encode_initial_op(op, out);
        }
        ReplicationEvent::Answer { lamport, target, position, decision, origin } => {
            out.put_u8(EV_ANSWER);
            out.put_u64(*lamport);
            out.put_u64(target.lamport);
            out.put_u32(target.origin.0);
            out.put_u32(*position);
            out.put_u8(match origin {
                ResolutionOrigin::Human => 0,
                ResolutionOrigin::System => 1,
            });
            encode_decision(decision, out);
        }
    }
}

fn decode_event(r: &mut ByteReader<'_>) -> Result<ReplicationEvent, WalError> {
    match r.take_u8()? {
        EV_SUBMIT => {
            let lamport = r.take_u64()?;
            let op = decode_initial_op(r)?;
            Ok(ReplicationEvent::Submit { lamport, op })
        }
        EV_ANSWER => {
            let lamport = r.take_u64()?;
            let target = EventStamp { lamport: r.take_u64()?, origin: NodeId(r.take_u32()?) };
            let position = r.take_u32()?;
            let origin = match r.take_u8()? {
                0 => ResolutionOrigin::Human,
                1 => ResolutionOrigin::System,
                tag => return Err(corrupt(format!("unknown resolution-origin tag {tag}"))),
            };
            let decision = decode_decision(r)?;
            Ok(ReplicationEvent::Answer { lamport, target, position, decision, origin })
        }
        tag => Err(corrupt(format!("unknown replication-event tag {tag}"))),
    }
}

/// Encodes a [`StateVector`] (length-prefixed origin/len pairs).
pub fn encode_state_vector(sv: &StateVector, out: &mut ByteWriter) {
    let pairs: Vec<(NodeId, u64)> = sv.iter().collect();
    out.put_u32(pairs.len() as u32);
    for (origin, len) in pairs {
        out.put_u32(origin.0);
        out.put_u64(len);
    }
}

/// Decodes a [`StateVector`] written by [`encode_state_vector`].
pub fn decode_state_vector(r: &mut ByteReader<'_>) -> Result<StateVector, WalError> {
    let count = r.take_u32()?;
    let mut sv = StateVector::new();
    for _ in 0..count {
        let origin = NodeId(r.take_u32()?);
        let len = r.take_u64()?;
        sv.set(origin, len);
    }
    Ok(sv)
}

/// Encodes a [`DeltaBatch`] into a self-checking byte message:
/// `magic · version · crc32(payload) · payload`.
pub fn encode_delta_batch(batch: &DeltaBatch) -> Vec<u8> {
    let mut payload = ByteWriter::new();
    payload.put_u32(batch.entries.len() as u32);
    for entry in &batch.entries {
        payload.put_u32(entry.origin.0);
        payload.put_u64(entry.first_seq);
        payload.put_u32(entry.events.len() as u32);
        for event in &entry.events {
            encode_event(event, &mut payload);
        }
    }
    let payload = payload.into_bytes();
    let mut out = ByteWriter::new();
    out.put_u32(SYNC_MAGIC);
    out.put_u32(SYNC_VERSION);
    out.put_u32(crc32(&payload));
    out.put_raw(&payload);
    out.into_bytes()
}

/// Decodes a message written by [`encode_delta_batch`], verifying magic,
/// version and checksum.
pub fn decode_delta_batch(bytes: &[u8]) -> Result<DeltaBatch, WalError> {
    let mut header = ByteReader::new(bytes);
    if header.take_u32()? != SYNC_MAGIC {
        return Err(corrupt("bad sync magic"));
    }
    let version = header.take_u32()?;
    if version != SYNC_VERSION {
        return Err(corrupt(format!("unsupported sync version {version}")));
    }
    let crc = header.take_u32()?;
    let payload = &bytes[12..];
    if crc32(payload) != crc {
        return Err(corrupt("sync payload checksum mismatch"));
    }
    let mut r = ByteReader::new(payload);
    let entry_count = r.take_u32()?;
    let mut entries = Vec::with_capacity(entry_count as usize);
    for _ in 0..entry_count {
        let origin = NodeId(r.take_u32()?);
        let first_seq = r.take_u64()?;
        let event_count = r.take_u32()?;
        let mut events = Vec::with_capacity(event_count as usize);
        for _ in 0..event_count {
            events.push(decode_event(&mut r)?);
        }
        entries.push(DeltaEntry { origin, first_seq, events });
    }
    r.expect_done()?;
    Ok(DeltaBatch { entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::PositiveAction;
    use youtopia_storage::{RelationId, TupleId, Value};

    fn sample_batch() -> DeltaBatch {
        DeltaBatch {
            entries: vec![
                DeltaEntry {
                    origin: NodeId(0),
                    first_seq: 2,
                    events: vec![
                        ReplicationEvent::Submit {
                            lamport: 7,
                            op: InitialOp::Insert {
                                relation: RelationId(1),
                                values: vec![Value::constant("x")],
                            },
                        },
                        ReplicationEvent::Answer {
                            lamport: 9,
                            target: EventStamp { lamport: 7, origin: NodeId(0) },
                            position: 0,
                            decision: FrontierDecision::Positive(vec![
                                PositiveAction::Expand,
                                PositiveAction::Unify { with: TupleId(4) },
                            ]),
                            origin: ResolutionOrigin::Human,
                        },
                    ],
                },
                DeltaEntry {
                    origin: NodeId(3),
                    first_seq: 0,
                    events: vec![ReplicationEvent::Answer {
                        lamport: 11,
                        target: EventStamp { lamport: 7, origin: NodeId(0) },
                        position: 1,
                        decision: FrontierDecision::Negative(vec![TupleId(8)]),
                        origin: ResolutionOrigin::System,
                    }],
                },
            ],
        }
    }

    #[test]
    fn canonical_order_is_lamport_then_origin() {
        let a = EventStamp { lamport: 3, origin: NodeId(9) };
        let b = EventStamp { lamport: 4, origin: NodeId(0) };
        let c = EventStamp { lamport: 4, origin: NodeId(1) };
        assert!(a < b, "lower lamport wins regardless of origin");
        assert!(b < c, "origin breaks lamport ties");
    }

    #[test]
    fn state_vector_merge_and_dominance() {
        let mut a = StateVector::new();
        a.set(NodeId(0), 5);
        a.set(NodeId(1), 2);
        let mut b = StateVector::new();
        b.set(NodeId(1), 4);
        b.set(NodeId(2), 1);
        assert!(!a.dominates(&b));
        a.merge(&b);
        assert_eq!(a.get(NodeId(0)), 5);
        assert_eq!(a.get(NodeId(1)), 4);
        assert_eq!(a.get(NodeId(2)), 1);
        assert!(a.dominates(&b));
        assert_eq!(a.total(), 10);
        assert_eq!(a.to_string(), "{n0:5, n1:4, n2:1}");
    }

    #[test]
    fn delta_batch_roundtrips() {
        let batch = sample_batch();
        let bytes = encode_delta_batch(&batch);
        assert_eq!(decode_delta_batch(&bytes).unwrap(), batch);
        assert_eq!(batch.event_count(), 3);
        assert!(!batch.is_empty());
        assert!(DeltaBatch::default().is_empty());
    }

    #[test]
    fn state_vector_roundtrips() {
        let mut sv = StateVector::new();
        sv.set(NodeId(2), 17);
        sv.set(NodeId(0), 1);
        let mut w = ByteWriter::new();
        encode_state_vector(&sv, &mut w);
        let bytes = w.into_bytes();
        let decoded = decode_state_vector(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(decoded, sv);
    }

    #[test]
    fn corruption_is_rejected_not_misapplied() {
        let mut bytes = encode_delta_batch(&sample_batch());
        // Flip one payload byte: the checksum must catch it.
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(decode_delta_batch(&bytes).is_err());
        // Truncations and foreign magic are rejected too.
        assert!(decode_delta_batch(&bytes[..8]).is_err());
        assert!(decode_delta_batch(&[0u8; 16]).is_err());
    }
}
