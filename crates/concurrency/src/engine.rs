//! The long-lived update-exchange service: [`ExchangeEngine`].
//!
//! The batch schedulers ([`ConcurrentRun`](crate::ConcurrentRun),
//! [`ParallelRun`](crate::ParallelRun)) take every update up front and run to
//! completion with a synchronous resolver callback. The paper's chase is not
//! shaped like that: updates arrive continuously and block on frontier
//! questions that humans answer asynchronously (Youtopia §3–5). The engine is
//! the service form of the same machinery:
//!
//! * **Open-world submission** — [`ExchangeEngine::submit`] accepts an update
//!   at any time, including while earlier updates are mid-chase or blocked on
//!   frontiers, and returns an [`UpdateHandle`] exposing
//!   [`status`](UpdateHandle::status) / [`wait`](UpdateHandle::wait) /
//!   [`report`](UpdateHandle::report). An admission cap turns overload into
//!   [`SubmitError::Saturated`] backpressure instead of unbounded queues.
//! * **Pull-based frontier resolution** — a chase that blocks publishes its
//!   request; [`ExchangeEngine::pending_frontiers`] lists the outstanding
//!   [`PendingFrontier`]s and [`ExchangeEngine::answer`] resumes the owning
//!   update. Tokens go stale when the owner aborts (its restart publishes a
//!   new one), so a late answer is reported as [`AnswerOutcome::Stale`]
//!   rather than resuming the wrong incarnation. [`ResolverPump`] drains the
//!   queue through any existing [`FrontierResolver`] for compatibility with
//!   the batch world.
//! * **Snapshot reads** — [`ExchangeEngine::read`] runs a closure over the
//!   last-committed database state (a read-lock session), the way a serving
//!   tier would answer queries while chases run.
//!
//! Internally the engine owns the worker pool that used to live inside
//! `ParallelRun` — sharded run queues, two-phase steps over an
//! `RwLock<Database>`, lock-striped logs, owner-performed aborts with
//! validated rollbacks — but keeps it alive across submissions. The two modes
//! carry over ([`SchedulerConfig::deterministic`]): the deterministic
//! sequencer executes the exact round-robin loop of `ConcurrentRun` (a batch
//! submitted before anything steps is byte-identical to the reference at any
//! worker count — pinned by `tests/engine_equivalence.rs`), and free-running
//! mode drops the sequencer for throughput.
//!
//! Unlike the inline resolvers of the batch world, an answer can arrive long
//! after the snapshot the user looked at: writes may commit in between. That
//! is exactly the cooperative setting — the machinery that keeps it sound is
//! unchanged: the request's plan-time reads are in the read log, the
//! decision's correction queries are recorded in the same read-lock session
//! that applies them, and any conflicting later write aborts the update.
//!
//! Lock order (outermost first): cursor → slots vector → slot → pending →
//! resolver (in [`ResolverPump`]) → database → tracker → metrics → all-ids →
//! log stripes. A worker never blocks on a second slot lock while holding one
//! (victim slots are `try_lock`ed; on failure the victim is flagged and its
//! owner acts).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock, Weak};
use std::thread::JoinHandle;

use youtopia_core::{
    ChaseError, FrontierDecision, FrontierResolver, FrontierToken, InitialOp, PendingFrontier,
    ReadQuery, StepOutcome, UpdateExecution, UpdateReport, UpdateState, UpdateStats,
};
use youtopia_mappings::MappingSet;
use youtopia_storage::{Database, TupleChange, UpdateId};

use crate::deps::DependencyTracker;
use crate::metrics::RunMetrics;
use crate::scheduler::{SchedulerConfig, SchedulingPolicy};
use crate::striped::{StripedReadLog, StripedWriteLog};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The change a rollback performs when it undoes `change`: rolling back an
/// insert deletes the tuple, rolling back a delete revives it, rolling back a
/// modification swaps the images.
fn invert_change(change: &TupleChange) -> TupleChange {
    match change {
        TupleChange::Inserted { relation, tuple, values } => {
            TupleChange::Deleted { relation: *relation, tuple: *tuple, old: values.clone() }
        }
        TupleChange::Deleted { relation, tuple, old } => {
            TupleChange::Inserted { relation: *relation, tuple: *tuple, values: old.clone() }
        }
        TupleChange::Modified { relation, tuple, old, new } => TupleChange::Modified {
            relation: *relation,
            tuple: *tuple,
            old: new.clone(),
            new: old.clone(),
        },
    }
}

/// Configuration of a long-lived [`ExchangeEngine`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// The scheduler knobs the engine inherits from the batch world: tracker,
    /// policy, chase mode, worker count, deterministic/free mode, the global
    /// step valve and the frontier delay (deterministic mode only).
    pub scheduler: SchedulerConfig,
    /// Priority number of the first submitted update; later submissions count
    /// up from here in arrival order (the paper's timestamp prioritisation).
    pub first_update_number: u64,
    /// Per-update step budget: an update that exceeds it fails alone (its
    /// writes are rolled back, its handle reports the error) instead of
    /// tearing the whole engine down the way
    /// [`SchedulerConfig::max_total_steps`] does.
    pub max_steps_per_update: usize,
    /// Admission cap: the maximum number of in-flight (non-terminated)
    /// updates. Submissions beyond it fail with [`SubmitError::Saturated`] —
    /// backpressure, not queueing.
    pub admission_cap: usize,
    /// Inline mode: spawn **no** worker threads and drive the deterministic
    /// sequencer on whichever thread pumps the engine ([`ResolverPump`],
    /// [`UpdateHandle::wait`], [`ExchangeEngine::wait_quiescent`]). The
    /// submit/poll/answer API is unchanged, but every cross-thread handoff
    /// disappears — the single-update [`crate::UpdateExchange`] façade uses
    /// this to keep micro-chases at single-threaded cost. Implies
    /// deterministic scheduling (the flag overrides
    /// [`SchedulerConfig::deterministic`]).
    pub inline: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            // `SchedulerConfig`'s cumulative step valve is a batch-run safety
            // net; on a long-lived service it would become a lifetime time
            // bomb (the engine dies for good once total steps ever executed
            // reach it). Default engines are therefore unbounded globally —
            // bound individual updates with `max_steps_per_update` instead.
            // Batch adapters pass their own scheduler config and keep the
            // valve.
            scheduler: SchedulerConfig::default().with_max_total_steps(usize::MAX),
            first_update_number: 1,
            max_steps_per_update: usize::MAX,
            admission_cap: usize::MAX,
            inline: false,
        }
    }
}

impl EngineConfig {
    /// Replaces the scheduler knobs.
    pub fn with_scheduler(mut self, scheduler: SchedulerConfig) -> EngineConfig {
        self.scheduler = scheduler;
        self
    }

    /// Replaces the first update number.
    pub fn with_first_update_number(mut self, first: u64) -> EngineConfig {
        self.first_update_number = first;
        self
    }

    /// Replaces the per-update step budget.
    pub fn with_max_steps_per_update(mut self, limit: usize) -> EngineConfig {
        self.max_steps_per_update = limit;
        self
    }

    /// Replaces the admission cap.
    pub fn with_admission_cap(mut self, cap: usize) -> EngineConfig {
        self.admission_cap = cap;
        self
    }

    /// Switches to inline (threadless, caller-driven) mode — see
    /// [`EngineConfig::inline`].
    pub fn run_inline(mut self) -> EngineConfig {
        self.inline = true;
        self
    }
}

/// Why a submission was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission cap is reached; retry after in-flight updates terminate.
    Saturated {
        /// In-flight updates at rejection time.
        active: usize,
        /// The configured cap.
        cap: usize,
    },
    /// The engine has been shut down or has failed fatally (see
    /// [`ExchangeEngine::error`]).
    ShutDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Saturated { active, cap } => {
                write!(f, "engine saturated: {active} in-flight updates at cap {cap}")
            }
            SubmitError::ShutDown => write!(f, "engine is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// What happened to an [`ExchangeEngine::answer`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnswerOutcome {
    /// The decision was applied and the owning update resumed.
    Applied,
    /// The token no longer names an outstanding request (the owner aborted
    /// and restarted, or the request was already answered). Harmless: the
    /// restarted chase publishes a fresh token for whatever it blocks on next.
    Stale,
}

/// Where an update submitted to the engine currently stands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateStatus {
    /// Queued or mid-chase.
    Running,
    /// Blocked on a frontier request (listed by
    /// [`ExchangeEngine::pending_frontiers`] once published).
    AwaitingFrontier,
    /// Ran to completion; [`UpdateHandle::report`] is available.
    Terminated,
    /// Failed terminally (per-update step budget); its writes were rolled
    /// back and [`UpdateHandle::error`] holds the cause.
    Failed,
}

/// Generation-counting wakeup channel: every observable state change bumps the
/// generation and notifies, waiters re-check their predicate. Coarse but
/// lost-wakeup-free.
struct Signal {
    gen: Mutex<u64>,
    cond: Condvar,
}

impl Signal {
    fn new() -> Signal {
        Signal { gen: Mutex::new(0), cond: Condvar::new() }
    }

    fn current(&self) -> u64 {
        *lock(&self.gen)
    }

    fn bump(&self) {
        *lock(&self.gen) += 1;
        self.cond.notify_all();
    }

    /// Blocks until the generation moves past `seen` (returns immediately if
    /// it already has).
    fn wait_past(&self, seen: u64) {
        let mut gen = lock(&self.gen);
        while *gen == seen {
            gen = self.cond.wait(gen).unwrap_or_else(|e| e.into_inner());
        }
    }
}

struct Slot {
    exec: UpdateExecution,
    /// Rounds remaining before a pending frontier request is published
    /// (deterministic mode only; free-running has no notion of rounds).
    frontier_wait: usize,
    /// Unowned and in no run queue: terminated, blocked on a published
    /// frontier, or failed. Parked slots are re-enqueued by whoever changes
    /// their state (an answer, an abort).
    parked: bool,
    /// Token of the published-but-unanswered frontier request, if any.
    published: Option<FrontierToken>,
    /// Terminal per-update failure (step budget); never cleared.
    failed: Option<ChaseError>,
}

struct SlotCell {
    slot: Mutex<Slot>,
    /// Set by a validator that could not lock this slot (its owner holds it);
    /// the owner executes the abort at its next commit point. Cleared only by
    /// whoever performs the abort, under the slot lock.
    abort_requested: AtomicBool,
}

/// The sequencer of deterministic mode: the next index of the round-robin
/// cursor plus the set of live (non-terminated, non-failed) slot indices, so a
/// long-lived engine does not re-scan thousands of terminated slots per round.
/// Iterating the live set in ascending order per round visits exactly the
/// slots the reference loop would act on, in the same order.
struct DetCursor {
    next: usize,
    live: BTreeSet<usize>,
}

/// What one deterministic sequencer action accomplished.
enum DetProgress {
    /// An action was taken (or a round boundary crossed); keep going.
    Acted,
    /// Nothing is live; sleep until a submission arrives.
    Idle,
    /// A published frontier awaits its answer; nothing may act until then.
    AwaitingAnswer,
}

struct PendingEntry {
    update: UpdateId,
    slot: usize,
    request: youtopia_core::FrontierRequest,
}

/// Lives for the whole body of a worker thread. A worker that exits its loop
/// normally does so only on `stop` (or after `fail` set it); a worker that
/// unwinds from a panic would otherwise leave pumps and `wait()`ers blocked
/// forever on a signal nobody will bump — this guard's drop turns that into a
/// visible engine failure instead.
struct WorkerGuard<'a> {
    shared: &'a EngineShared,
}

impl Drop for WorkerGuard<'_> {
    fn drop(&mut self) {
        if !self.shared.stop.load(Ordering::SeqCst) {
            self.shared.fail(ChaseError::InvalidDecision(
                "engine worker exited unexpectedly (panic in a chase step?)".into(),
            ));
        }
    }
}

struct EngineShared {
    mappings: MappingSet,
    db: RwLock<Database>,
    config: EngineConfig,
    deterministic: bool,
    /// Threadless mode: the deterministic sequencer runs on whichever thread
    /// pumps or waits (see [`EngineConfig::inline`]).
    inline: bool,
    /// Growable slot table; index = update number − `first_update_number`.
    slots: RwLock<Vec<Arc<SlotCell>>>,
    all_ids: Mutex<Vec<UpdateId>>,
    read_log: StripedReadLog,
    write_log: StripedWriteLog,
    tracker: Mutex<Box<dyn DependencyTracker>>,
    metrics: Mutex<RunMetrics>,
    /// Sharded run queues of slot indices (free-running mode).
    queues: Vec<Mutex<VecDeque<usize>>>,
    /// Deterministic sequencer state.
    cursor: Mutex<DetCursor>,
    /// Slot indices submitted since the sequencer last looked (deterministic
    /// mode; absorbed into the live set without taking the cursor lock on the
    /// submit path).
    det_incoming: Mutex<Vec<usize>>,
    /// Outstanding frontier requests, keyed by token (= publish order).
    pending: Mutex<BTreeMap<u64, PendingEntry>>,
    /// Number of slots with a published-but-not-fully-answered frontier.
    /// Unlike `pending` emptiness, this only drops once an answer has been
    /// *applied* (or the token invalidated by an abort) — the deterministic
    /// sequencer gates on it, so no step can slip in between `answer()`
    /// removing the entry and the decision's effects landing.
    unanswered: AtomicUsize,
    next_token: AtomicU64,
    /// Non-terminated, non-failed updates (admission + quiescence).
    active: AtomicUsize,
    /// Workers currently processing a slot (free mode).
    in_flight: AtomicUsize,
    stop: AtomicBool,
    error: Mutex<Option<ChaseError>>,
    signal: Signal,
}

impl EngineShared {
    fn slot_cell(&self, idx: usize) -> Arc<SlotCell> {
        self.slots.read().unwrap_or_else(|e| e.into_inner())[idx].clone()
    }

    fn index_of(&self, update: UpdateId) -> Option<usize> {
        let idx = update.0.checked_sub(self.config.first_update_number)? as usize;
        (idx < self.slots.read().unwrap_or_else(|e| e.into_inner()).len()).then_some(idx)
    }

    fn fail(&self, e: ChaseError) {
        let mut slot = lock(&self.error);
        if slot.is_none() {
            *slot = Some(e);
        }
        self.stop.store(true, Ordering::SeqCst);
        self.signal.bump();
    }

    // ------------------------------------------------------------------
    // Shared step machinery (both modes) — ported from `ParallelRun`
    // ------------------------------------------------------------------

    /// Records the read queries a step (or frontier resolution) performed:
    /// dependencies first, then the retained read log. The caller holds the
    /// database read lock — recording before that lock is released is what
    /// guarantees any later-committing write sees these reads when it
    /// validates.
    fn record_reads_locked(&self, db: &Database, reader: UpdateId, reads: Vec<ReadQuery>) {
        if reads.is_empty() {
            return;
        }
        // Solo fast path: if `reader` is the only in-flight update it is the
        // lowest-numbered one, and stays so forever (priority numbers are
        // monotone and terminated updates below it can never run again). Its
        // stored reads could only ever be consulted when a *lower*-numbered
        // writer validates — no such writer will ever exist — so recording
        // them (and the tracker's dependency walk, the expensive half of a
        // step) is pure overhead. Updates submitted later get numbered above
        // `reader` and record normally. This is what keeps the one-at-a-time
        // `UpdateExchange` façade at near single-threaded cost.
        if self.active.load(Ordering::SeqCst) <= 1 {
            return;
        }
        {
            let snap = db.snapshot(reader);
            lock(&self.tracker).record_reads(
                reader,
                &reads,
                &self.write_log,
                &snap,
                &self.mappings,
            );
        }
        self.read_log.record(reader, reads, &self.mappings);
    }

    /// Executes one chase step for the locked slot: write half under the
    /// database write lock, read half (analysis, logging, read recording and
    /// conflict collection) under a read lock. Returns the step outcome and
    /// the consolidated abort set — the caller decides how to execute the
    /// aborts (synchronously in deterministic mode, via flags when
    /// free-running).
    fn step_and_validate(
        &self,
        slot: &mut Slot,
    ) -> Result<(StepOutcome, BTreeSet<UpdateId>), ChaseError> {
        // Safety valve, checked per step so the error names the update that
        // was actually stepping when the limit tripped.
        if lock(&self.metrics).steps >= self.config.scheduler.max_total_steps {
            return Err(ChaseError::StepLimitExceeded {
                update: slot.exec.id(),
                limit: self.config.scheduler.max_total_steps,
            });
        }
        let applied = {
            let mut db = self.db.write().unwrap_or_else(|e| e.into_inner());
            slot.exec.begin_step(&mut db)?
        };
        let db = self.db.read().unwrap_or_else(|e| e.into_inner());
        let outcome = slot.exec.finish_step(&db, &self.mappings, applied)?;
        {
            let mut metrics = lock(&self.metrics);
            metrics.steps += 1;
            metrics.changes += outcome.writes.iter().map(|w| w.changes.len()).sum::<usize>();
        }
        let id = outcome.update;

        // Log writes (for dependency tracking) and reads (for conflicts).
        self.write_log.push_all(&outcome.writes);
        lock(&self.tracker).record_writes(id, &outcome.writes);
        self.record_reads_locked(&db, id, outcome.reads.clone());

        // Algorithm 4: check every change against the stored reads of
        // higher-numbered updates; cascade through the tracker.
        let changes: Vec<TupleChange> =
            outcome.writes.iter().flat_map(|w| w.changes.iter().cloned()).collect();
        let to_abort = self.collect_aborts_locked(&db, id, &changes);
        Ok((outcome, to_abort))
    }

    /// Computes the consolidated abort set caused by a step's changes —
    /// direct conflicts plus the transitive read-dependents of each directly
    /// conflicting update — with the same candidate walk and request
    /// accounting as the single-threaded scheduler, over the striped logs.
    /// The caller holds the database read lock.
    fn collect_aborts_locked(
        &self,
        db: &Database,
        writer: UpdateId,
        changes: &[TupleChange],
    ) -> BTreeSet<UpdateId> {
        let mut pending: BTreeSet<UpdateId> = BTreeSet::new();
        if changes.is_empty() {
            return pending;
        }
        let tracker = lock(&self.tracker);
        let all_ids = lock(&self.all_ids);
        // Request counters accumulate locally so the global metrics mutex is
        // taken once, at the end — other workers' per-step counter bumps must
        // not queue behind this walk's query re-evaluation.
        let mut direct_requests = 0usize;
        let mut cascading_requests = 0usize;
        for change in changes {
            let relation = change.relation();
            for reader in self.read_log.readers_above_touching(writer, relation) {
                let conflicts = {
                    let snapshot = db.snapshot(reader);
                    self.read_log
                        .queries_touching(reader, relation)
                        .iter()
                        .any(|q| q.affected_by(&snapshot, &self.mappings, change))
                };
                if !conflicts {
                    continue;
                }
                direct_requests += 1;
                pending.insert(reader);
                // Cascade: everyone who (transitively) read from the aborted
                // reader must abort too; every request is counted, even when
                // the target is already marked (see ConcurrentRun).
                let mut stack = vec![reader];
                let mut visited: BTreeSet<UpdateId> = BTreeSet::new();
                visited.insert(reader);
                while let Some(a) = stack.pop() {
                    for dependent in tracker.dependents_of(a, &all_ids) {
                        if dependent <= writer {
                            continue;
                        }
                        cascading_requests += 1;
                        pending.insert(dependent);
                        if visited.insert(dependent) {
                            stack.push(dependent);
                        }
                    }
                }
            }
        }
        if direct_requests > 0 || cascading_requests > 0 {
            let mut metrics = lock(&self.metrics);
            metrics.direct_conflict_requests += direct_requests;
            metrics.cascading_abort_requests += cascading_requests;
        }
        pending
    }

    /// Free-running only: an abort's (or failure's) rollback is a write like
    /// any other — returns the updates whose recorded reads it retroactively
    /// invalidated (checked exactly, per read query — never via the tracker,
    /// whose conservative answers would make abort waves feed on themselves
    /// under `NAIVE`). The caller feeds them back into the abort machinery.
    fn validate_rollback(&self, victim: UpdateId, rolled_back: &[TupleChange]) -> Vec<UpdateId> {
        let mut undone_readers: Vec<UpdateId> = Vec::new();
        if rolled_back.is_empty() {
            return undone_readers;
        }
        let db = self.db.read().unwrap_or_else(|e| e.into_inner());
        for change in rolled_back {
            let relation = change.relation();
            for reader in self.read_log.readers_above_touching(victim, relation) {
                if undone_readers.contains(&reader) {
                    continue;
                }
                let snapshot = db.snapshot(reader);
                if self
                    .read_log
                    .queries_touching(reader, relation)
                    .iter()
                    .any(|q| q.affected_by(&snapshot, &self.mappings, change))
                {
                    undone_readers.push(reader);
                }
            }
        }
        if !undone_readers.is_empty() {
            // One metrics acquisition after the walk — query re-evaluation
            // must not hold the global counter mutex.
            lock(&self.metrics).direct_conflict_requests += undone_readers.len();
        }
        undone_readers
    }

    /// Performs the consolidated abort of a slot whose lock the caller holds:
    /// roll back its writes, invalidate its published frontier token, clear
    /// its logs and dependency bookkeeping, reset it to redo its initial
    /// operation. `revive` is true when the slot had already terminated — the
    /// abort brings it back into the active count and the caller must hand it
    /// back to the scheduler (queue or live set).
    fn execute_abort(
        &self,
        cell: &SlotCell,
        slot: &mut Slot,
        revive: bool,
        validate: bool,
    ) -> Vec<UpdateId> {
        let victim = slot.exec.id();
        // `validate` captures the victim's logged changes before they go
        // away; their inverses are validated like writes. Conflict-decided
        // aborts under the deterministic sequencer pass `false`: they happen
        // synchronously inside the validation that decided them, exactly
        // like the single-threaded reference, so no reader can slip in
        // between and validating would only skew reference metrics. Every
        // other abort (free-running, or cascading from a budget failure)
        // validates.
        let rolled_back: Vec<TupleChange> = if validate {
            self.write_log.changes_of(victim).iter().map(invert_change).collect()
        } else {
            Vec::new()
        };
        {
            let mut db = self.db.write().unwrap_or_else(|e| e.into_inner());
            db.rollback_update(victim);
        }
        if let Some(token) = slot.published.take() {
            lock(&self.pending).remove(&token.0);
            self.unanswered.fetch_sub(1, Ordering::SeqCst);
        }
        slot.exec.reset_for_restart();
        slot.frontier_wait = 0;
        self.read_log.clear(victim);
        self.write_log.remove_update(victim);
        {
            let mut tracker = lock(&self.tracker);
            tracker.note_abort(victim);
            tracker.clear_update(victim);
        }
        lock(&self.metrics).aborts += 1;
        let undone_readers = self.validate_rollback(victim, &rolled_back);
        cell.abort_requested.store(false, Ordering::SeqCst);
        if revive {
            self.active.fetch_add(1, Ordering::SeqCst);
        }
        self.signal.bump();
        undone_readers
    }

    /// Fails the locked slot terminally (per-update step budget): its writes
    /// are rolled back (validated like an abort's in free mode), its logs and
    /// bookkeeping cleared, and the error parked on the slot for its handle.
    /// Unlike an abort it does not restart.
    fn fail_slot(&self, cell: &SlotCell, slot: &mut Slot, error: ChaseError) -> Vec<UpdateId> {
        let victim = slot.exec.id();
        // Unlike a conflict-decided abort, a budget failure fires at an
        // arbitrary point in the schedule — in *both* modes its rollback can
        // retroactively invalidate reads other updates already performed, so
        // it is always validated like a write and the caller must abort the
        // returned dependents (synchronously under the deterministic
        // sequencer, via `abort_all` when free-running).
        let rolled_back: Vec<TupleChange> =
            self.write_log.changes_of(victim).iter().map(invert_change).collect();
        {
            let mut db = self.db.write().unwrap_or_else(|e| e.into_inner());
            db.rollback_update(victim);
        }
        if let Some(token) = slot.published.take() {
            lock(&self.pending).remove(&token.0);
            self.unanswered.fetch_sub(1, Ordering::SeqCst);
        }
        self.read_log.clear(victim);
        self.write_log.remove_update(victim);
        lock(&self.tracker).clear_update(victim);
        slot.failed = Some(error);
        slot.parked = true;
        self.active.fetch_sub(1, Ordering::SeqCst);
        let undone_readers = self.validate_rollback(victim, &rolled_back);
        cell.abort_requested.store(false, Ordering::SeqCst);
        self.signal.bump();
        undone_readers
    }

    /// Quiescence garbage collection: once nothing is active, in flight or
    /// awaiting an answer, every retained read, logged write and tracker
    /// dependency is provably dead — only a still-running lower-numbered
    /// update could ever consult them again, and there is none. Dropping
    /// them keeps a long-lived engine's per-update cost flat instead of
    /// taxing update N with the whole history of updates 1..N (the wildcard
    /// reader walk alone would otherwise scan every past null-occurrence
    /// query on every change).
    ///
    /// Serialised against submission by the slots write lock: a submission
    /// that won the lock first left `active > 0` (checked again inside), and
    /// one that comes after finds freshly cleared logs its update has not
    /// touched yet. A worker cannot be mid-step here — a popped slot is
    /// non-terminated, which keeps `active > 0` for as long as it is owned.
    fn maybe_gc(&self) {
        if self.active.load(Ordering::SeqCst) != 0 || self.in_flight.load(Ordering::SeqCst) != 0 {
            return;
        }
        let _slots = self.slots.write().unwrap_or_else(|e| e.into_inner());
        if self.active.load(Ordering::SeqCst) != 0
            || self.in_flight.load(Ordering::SeqCst) != 0
            || self.unanswered.load(Ordering::SeqCst) != 0
        {
            return;
        }
        self.read_log.clear_all();
        self.write_log.clear_all();
        *lock(&self.tracker) = self.config.scheduler.tracker.build();
    }

    /// Publishes the locked slot's pending frontier request under a fresh
    /// token. Idempotent while a token is outstanding.
    fn publish_frontier(&self, slot: &mut Slot, idx: usize) {
        if slot.published.is_some() {
            return;
        }
        let token = FrontierToken(self.next_token.fetch_add(1, Ordering::SeqCst));
        let request = slot.exec.pending_frontier().expect("state is AwaitingFrontier").clone();
        slot.published = Some(token);
        slot.parked = true;
        self.unanswered.fetch_add(1, Ordering::SeqCst);
        lock(&self.pending)
            .insert(token.0, PendingEntry { update: slot.exec.id(), slot: idx, request });
        self.signal.bump();
    }

    /// Applies an answered decision to the owning slot. The pending entry has
    /// already been removed by the caller; on a rejected (invalid) decision it
    /// is restored under the same token so the user can retry.
    fn apply_answer(
        &self,
        token: FrontierToken,
        entry: PendingEntry,
        decision: FrontierDecision,
    ) -> Result<AnswerOutcome, ChaseError> {
        let cell = self.slot_cell(entry.slot);
        let mut slot = lock(&cell.slot);
        if slot.published != Some(token) || slot.exec.state() != UpdateState::AwaitingFrontier {
            return Ok(AnswerOutcome::Stale);
        }
        let id = slot.exec.id();
        {
            // One read-lock session covers the frontier resolution and the
            // recording of its correction queries: a write committing after
            // this session needs the write lock, i.e. happens after the reads
            // it must be validated against are in the log.
            let db = self.db.read().unwrap_or_else(|e| e.into_inner());
            match slot.exec.resolve_frontier(&self.mappings, decision) {
                Ok(reads) => {
                    lock(&self.metrics).frontier_ops += 1;
                    self.record_reads_locked(&db, id, reads);
                }
                Err(e) => {
                    // The execution restored its request; re-list it under
                    // the same token so the user can retry.
                    lock(&self.pending).insert(token.0, entry);
                    return Err(e);
                }
            }
        }
        slot.published = None;
        self.unanswered.fetch_sub(1, Ordering::SeqCst);
        if self.deterministic {
            drop(slot);
        } else {
            slot.parked = false;
            let shard = self.shard_of(&slot.exec);
            drop(slot);
            self.enqueue(shard, entry.slot);
            self.settle_flag(entry.slot);
        }
        self.signal.bump();
        Ok(AnswerOutcome::Applied)
    }

    // ------------------------------------------------------------------
    // Deterministic mode: the reference serialisation order, open world
    // ------------------------------------------------------------------

    fn det_worker(&self) {
        let _guard = WorkerGuard { shared: self };
        loop {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            // Generation first, action second: any event that would unblock
            // the sequencer (submission, answer) after this capture moves the
            // generation and makes the wait below return immediately; any
            // event before it is visible to `det_action`. No lost wakeups.
            let gen = self.signal.current();
            let mut cur = lock(&self.cursor);
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            match self.det_action(&mut cur) {
                Ok(DetProgress::Acted) => {}
                Ok(DetProgress::Idle | DetProgress::AwaitingAnswer) => {
                    drop(cur);
                    self.signal.wait_past(gen);
                }
                Err(e) => {
                    drop(cur);
                    self.fail(e);
                    break;
                }
            }
        }
    }

    /// Drives the deterministic sequencer on the calling thread (inline mode:
    /// there are no workers) until it goes idle or blocks on an unanswered
    /// frontier. A step error fails the engine, exactly as a worker would.
    fn drive_inline(&self) -> Result<(), ChaseError> {
        let mut cur = lock(&self.cursor);
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            match self.det_action(&mut cur) {
                Ok(DetProgress::Acted) => {}
                Ok(DetProgress::Idle | DetProgress::AwaitingAnswer) => return Ok(()),
                Err(e) => {
                    drop(cur);
                    self.fail(e.clone());
                    return Err(e);
                }
            }
        }
    }

    /// Folds newly submitted slot indices into the live set.
    fn det_absorb_incoming(&self, cur: &mut DetCursor) {
        let mut incoming = lock(&self.det_incoming);
        for idx in incoming.drain(..) {
            cur.live.insert(idx);
        }
    }

    /// One sequencer action: the body of the reference loop for the next live
    /// slot at or after the cursor. Skipping terminated slots via the live
    /// set visits exactly the indices the reference loop would act on, in the
    /// same ascending-per-round order. While a published frontier awaits its
    /// answer the sequencer refuses to act at all — the pull-based analogue
    /// of the reference blocking in its synchronous resolver call at exactly
    /// that point in the round.
    fn det_action(&self, cur: &mut DetCursor) -> Result<DetProgress, ChaseError> {
        if self.unanswered.load(Ordering::SeqCst) > 0 {
            return Ok(DetProgress::AwaitingAnswer);
        }
        self.det_absorb_incoming(cur);
        if cur.live.is_empty() {
            return Ok(DetProgress::Idle);
        }
        let idx = match cur.live.range(cur.next..).next() {
            Some(&idx) => idx,
            None => {
                // Round boundary.
                cur.next = 0;
                return Ok(DetProgress::Acted);
            }
        };
        cur.next = idx + 1;
        let cell = self.slot_cell(idx);
        let state = lock(&cell.slot).exec.state();
        match state {
            UpdateState::Terminated => {
                cur.live.remove(&idx);
            }
            UpdateState::AwaitingFrontier => {
                let mut slot = lock(&cell.slot);
                if slot.frontier_wait > 0 {
                    slot.frontier_wait -= 1;
                } else {
                    self.publish_frontier(&mut slot, idx);
                    return Ok(DetProgress::AwaitingAnswer);
                }
            }
            UpdateState::Ready => {
                self.det_run_ready_slot(cur, idx, &cell)?;
                // The slot (or a failed one) may have been the last active
                // update; all slot locks are released again at this point.
                self.maybe_gc();
            }
        }
        Ok(DetProgress::Acted)
    }

    /// The reference `run_ready_slot`: step, validate, abort synchronously,
    /// honour the scheduling policy. The whole routine runs under the
    /// sequencer, so victim slot locks are uncontended.
    fn det_run_ready_slot(
        &self,
        cur: &mut DetCursor,
        idx: usize,
        cell: &Arc<SlotCell>,
    ) -> Result<(), ChaseError> {
        loop {
            let mut slot = lock(&cell.slot);
            if slot.exec.stats().steps >= self.config.max_steps_per_update {
                let err = ChaseError::StepLimitExceeded {
                    update: slot.exec.id(),
                    limit: self.config.max_steps_per_update,
                };
                let dependents = self.fail_slot(cell, &mut slot, err);
                drop(slot);
                self.det_abort_worklist(cur, dependents);
                cur.live.remove(&idx);
                return Ok(());
            }
            let (outcome, to_abort) = self.step_and_validate(&mut slot)?;
            drop(slot);
            for &victim in &to_abort {
                let Some(vidx) = self.index_of(victim) else { continue };
                let vcell = self.slot_cell(vidx);
                let mut vslot = lock(&vcell.slot);
                if vslot.failed.is_some() {
                    continue;
                }
                let was_terminated = vslot.exec.is_terminated();
                self.execute_abort(&vcell, &mut vslot, was_terminated, false);
                if was_terminated {
                    cur.live.insert(vidx);
                }
            }
            let mut slot = lock(&cell.slot);
            if outcome.frontier_request.is_some() {
                slot.frontier_wait = self.config.scheduler.frontier_delay_rounds;
            }
            if slot.exec.is_terminated() {
                cur.live.remove(&idx);
                self.active.fetch_sub(1, Ordering::SeqCst);
                self.signal.bump();
                break;
            }
            // Step-level round robin hands control back after one step; the
            // stratum policy keeps going while the update remains ready.
            if self.config.scheduler.policy == SchedulingPolicy::StepRoundRobin
                || slot.exec.state() != UpdateState::Ready
            {
                break;
            }
        }
        Ok(())
    }

    /// Executes a failure-triggered abort cascade under the sequencer: each
    /// victim's rollback is validated like a write (a budget failure fires
    /// outside any conflict validation, so readers may have slipped in
    /// between), and victims whose own rollbacks retroactively invalidate
    /// further reads are fed back into the worklist. Revived (previously
    /// terminated) victims rejoin the live set.
    fn det_abort_worklist(&self, cur: &mut DetCursor, victims: Vec<UpdateId>) {
        let mut work: VecDeque<UpdateId> = victims.into();
        while let Some(victim) = work.pop_front() {
            let Some(vidx) = self.index_of(victim) else { continue };
            let cell = self.slot_cell(vidx);
            let mut slot = lock(&cell.slot);
            if slot.failed.is_some() {
                continue;
            }
            let was_terminated = slot.exec.is_terminated();
            let dependents = self.execute_abort(&cell, &mut slot, was_terminated, true);
            if was_terminated {
                cur.live.insert(vidx);
            }
            work.extend(dependents);
        }
    }

    // ------------------------------------------------------------------
    // Free-running mode: sharded queues, overlapping read halves
    // ------------------------------------------------------------------

    /// Shard key of an update: the smallest relation its next step can touch
    /// (pending write targets plus the violation queue's relation index), so
    /// updates about to work on the same relations land in the same queue.
    fn shard_of(&self, exec: &UpdateExecution) -> usize {
        match exec.next_touched_relations().first() {
            Some(relation) => relation.0 as usize % self.queues.len(),
            // Unknown footprint (e.g. a pending null-replacement): spread by
            // update number.
            None => exec.id().0 as usize % self.queues.len(),
        }
    }

    fn enqueue(&self, shard: usize, idx: usize) {
        lock(&self.queues[shard % self.queues.len()]).push_back(idx);
        self.signal.bump();
    }

    /// Pops a ready slot, preferring the worker's own shard and stealing from
    /// the others in ring order.
    fn pop_slot(&self, me: usize) -> Option<usize> {
        let n = self.queues.len();
        for k in 0..n {
            if let Some(idx) = lock(&self.queues[(me + k) % n]).pop_front() {
                return Some(idx);
            }
        }
        None
    }

    fn free_worker(&self, me: usize) {
        let _guard = WorkerGuard { shared: self };
        loop {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let gen = self.signal.current();
            let Some(idx) = self.pop_slot(me) else {
                // Long-lived engine: park instead of exiting; a submission, an
                // answer or an abort re-enqueue bumps the generation.
                self.signal.wait_past(gen);
                continue;
            };
            self.in_flight.fetch_add(1, Ordering::SeqCst);
            let result = self.process_slot_free(idx);
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            self.maybe_gc();
            self.signal.bump();
            if let Err(e) = result {
                self.fail(e);
                break;
            }
        }
    }

    /// Runs the popped slot until it terminates, parks on a frontier, or
    /// (under step-level round robin) hands the update back to the queues
    /// after one step.
    fn process_slot_free(&self, idx: usize) -> Result<(), ChaseError> {
        let cell = self.slot_cell(idx);
        let mut slot = lock(&cell.slot);
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            // A validator flagged us while we were stepping (or while the
            // update sat in the queue): execute the abort, then continue from
            // the fresh restart.
            if cell.abort_requested.load(Ordering::SeqCst) {
                if slot.failed.is_some() {
                    cell.abort_requested.store(false, Ordering::SeqCst);
                } else {
                    let dependents = self.execute_abort(&cell, &mut slot, false, true);
                    drop(slot);
                    self.abort_all(dependents);
                    slot = lock(&cell.slot);
                    continue;
                }
            }
            if slot.failed.is_some() {
                slot.parked = true;
                return Ok(());
            }
            match slot.exec.state() {
                UpdateState::Terminated => {
                    slot.parked = true;
                    self.active.fetch_sub(1, Ordering::SeqCst);
                    drop(slot);
                    self.settle_flag(idx);
                    self.signal.bump();
                    return Ok(());
                }
                UpdateState::AwaitingFrontier => {
                    // Pull-based: publish the request and hand the worker
                    // back; the answer re-enqueues the slot.
                    self.publish_frontier(&mut slot, idx);
                    drop(slot);
                    self.settle_flag(idx);
                    return Ok(());
                }
                UpdateState::Ready => {
                    if slot.exec.stats().steps >= self.config.max_steps_per_update {
                        let err = ChaseError::StepLimitExceeded {
                            update: slot.exec.id(),
                            limit: self.config.max_steps_per_update,
                        };
                        let dependents = self.fail_slot(&cell, &mut slot, err);
                        drop(slot);
                        self.abort_all(dependents);
                        self.settle_flag(idx);
                        return Ok(());
                    }
                    let (_outcome, to_abort) = self.step_and_validate(&mut slot)?;
                    if !to_abort.is_empty() {
                        // Abort execution takes victim locks; ours stays held
                        // (victims are always other, higher-numbered updates).
                        self.abort_all(to_abort.iter().copied().collect());
                    }
                    if slot.exec.state() == UpdateState::Ready
                        && self.config.scheduler.policy == SchedulingPolicy::StepRoundRobin
                    {
                        if cell.abort_requested.load(Ordering::SeqCst) {
                            continue; // execute our own abort before requeueing
                        }
                        let shard = self.shard_of(&slot.exec);
                        drop(slot);
                        self.enqueue(shard, idx);
                        self.settle_flag(idx);
                        return Ok(());
                    }
                }
            }
        }
    }

    /// Executes (or requests) the abort of every update in the worklist,
    /// feeding each executed abort's at-abort-time dependents back in.
    /// Victims we cannot lock are flagged for their owner; `settle_flag`
    /// closes the race with an owner that released without seeing the flag.
    fn abort_all(&self, victims: Vec<UpdateId>) {
        let mut work: VecDeque<UpdateId> = victims.into();
        while let Some(victim) = work.pop_front() {
            let Some(vidx) = self.index_of(victim) else { continue };
            let cell = self.slot_cell(vidx);
            let attempt = cell.slot.try_lock();
            match attempt {
                Ok(mut vslot) => {
                    if vslot.failed.is_some() {
                        cell.abort_requested.store(false, Ordering::SeqCst);
                        continue;
                    }
                    let was_terminated = vslot.exec.is_terminated();
                    let was_parked = vslot.parked;
                    let dependents = self.execute_abort(&cell, &mut vslot, was_terminated, true);
                    if was_parked {
                        // Nobody owns a parked slot and it sits in no queue
                        // (it had terminated or was blocked on a frontier):
                        // the abort made it Ready again, so hand it back.
                        vslot.parked = false;
                        let shard = self.shard_of(&vslot.exec);
                        drop(vslot);
                        self.enqueue(shard, vidx);
                    }
                    work.extend(dependents);
                }
                Err(_) => {
                    cell.abort_requested.store(true, Ordering::SeqCst);
                    // If the owner released between our failed try_lock and
                    // the store, nobody may ever look at the flag again;
                    // settling re-checks. If the lock is held *now*, the
                    // holder's post-release settle happens after our store
                    // and is guaranteed to see it.
                    self.settle_flag(vidx);
                }
            }
        }
    }

    /// Ensures a requested abort on an unowned slot is not lost: called after
    /// every slot-lock release and after flagging a busy victim. Parked
    /// victims (terminated or frontier-blocked) are executed here and handed
    /// back to the queues; queued victims are left for the next worker that
    /// pops them.
    fn settle_flag(&self, idx: usize) {
        let cell = self.slot_cell(idx);
        loop {
            if !cell.abort_requested.load(Ordering::SeqCst) {
                return;
            }
            let Ok(mut slot) = cell.slot.try_lock() else {
                // Someone owns the slot right now; their post-release settle
                // will see the flag.
                return;
            };
            if !cell.abort_requested.load(Ordering::SeqCst) {
                return;
            }
            if slot.failed.is_some() {
                cell.abort_requested.store(false, Ordering::SeqCst);
                return;
            }
            if !slot.parked {
                // The slot is in a run queue; its next owner executes the
                // abort before stepping.
                return;
            }
            let was_terminated = slot.exec.is_terminated();
            let dependents = self.execute_abort(&cell, &mut slot, was_terminated, true);
            slot.parked = false;
            let shard = self.shard_of(&slot.exec);
            drop(slot);
            self.enqueue(shard, idx);
            self.abort_all(dependents);
        }
    }
}

/// A long-lived cooperative update-exchange service. See the module docs for
/// the execution model; construct with [`ExchangeEngine::new`], feed it with
/// [`submit`](Self::submit), answer its [`pending_frontiers`](Self::pending_frontiers)
/// via [`answer`](Self::answer) (or a [`ResolverPump`]), and read committed
/// state with [`read`](Self::read).
pub struct ExchangeEngine {
    shared: Arc<EngineShared>,
    threads: Vec<JoinHandle<()>>,
}

impl ExchangeEngine {
    /// Starts an engine over `db` and `mappings`: its worker pool
    /// ([`SchedulerConfig::workers`], 0 = one per core) is spawned immediately
    /// and stays alive — parked when idle — until [`shutdown`](Self::shutdown)
    /// or drop.
    pub fn new(db: Database, mappings: MappingSet, config: EngineConfig) -> ExchangeEngine {
        let workers = if config.scheduler.workers > 0 {
            config.scheduler.workers
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        };
        // Inline mode is caller-driven and therefore sequenced: it implies
        // the deterministic scheduler regardless of what the config says.
        let inline = config.inline;
        let deterministic = config.scheduler.deterministic || inline;
        let shared = Arc::new(EngineShared {
            mappings,
            db: RwLock::new(db),
            deterministic,
            inline,
            slots: RwLock::new(Vec::new()),
            all_ids: Mutex::new(Vec::new()),
            read_log: StripedReadLog::default(),
            write_log: StripedWriteLog::default(),
            tracker: Mutex::new(config.scheduler.tracker.build()),
            metrics: Mutex::new(RunMetrics::default()),
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            cursor: Mutex::new(DetCursor { next: 0, live: BTreeSet::new() }),
            det_incoming: Mutex::new(Vec::new()),
            pending: Mutex::new(BTreeMap::new()),
            unanswered: AtomicUsize::new(0),
            next_token: AtomicU64::new(0),
            active: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            error: Mutex::new(None),
            signal: Signal::new(),
            config,
        });
        let threads = if inline {
            Vec::new()
        } else {
            (0..workers)
                .map(|me| {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("youtopia-engine-{me}"))
                        .spawn(move || {
                            if shared.deterministic {
                                shared.det_worker()
                            } else {
                                shared.free_worker(me)
                            }
                        })
                        .expect("spawn engine worker")
                })
                .collect()
        };
        ExchangeEngine { shared, threads }
    }

    /// Submits one update. See [`submit_batch`](Self::submit_batch).
    pub fn submit(&self, op: InitialOp) -> Result<UpdateHandle, SubmitError> {
        self.submit_batch(vec![op]).map(|mut handles| handles.pop().expect("one handle"))
    }

    /// Submits a batch of updates atomically: all of them receive consecutive
    /// priority numbers and become visible to the scheduler together, so a
    /// batch submitted to an idle deterministic engine chases exactly like the
    /// same batch under [`ConcurrentRun`](crate::ConcurrentRun). Fails with
    /// [`SubmitError::Saturated`] when the admission cap would be exceeded
    /// (nothing is admitted) and [`SubmitError::ShutDown`] after shutdown or a
    /// fatal error.
    pub fn submit_batch(&self, ops: Vec<InitialOp>) -> Result<Vec<UpdateHandle>, SubmitError> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        let shared = &self.shared;
        if shared.stop.load(Ordering::SeqCst) {
            return Err(SubmitError::ShutDown);
        }
        let mut slots = shared.slots.write().unwrap_or_else(|e| e.into_inner());
        let active = shared.active.load(Ordering::SeqCst);
        if active.saturating_add(ops.len()) > shared.config.admission_cap {
            return Err(SubmitError::Saturated { active, cap: shared.config.admission_cap });
        }
        let base = slots.len();
        let count = ops.len();
        let mut handles = Vec::with_capacity(count);
        {
            let mut all_ids = lock(&shared.all_ids);
            for (i, op) in ops.into_iter().enumerate() {
                let id = UpdateId(shared.config.first_update_number + (base + i) as u64);
                let cell = Arc::new(SlotCell {
                    slot: Mutex::new(Slot {
                        exec: UpdateExecution::with_mode(
                            id,
                            op,
                            shared.config.scheduler.chase_mode,
                        ),
                        frontier_wait: 0,
                        parked: false,
                        published: None,
                        failed: None,
                    }),
                    abort_requested: AtomicBool::new(false),
                });
                slots.push(Arc::clone(&cell));
                all_ids.push(id);
                handles.push(UpdateHandle { id, cell, shared: Arc::downgrade(shared) });
            }
        }
        shared.active.fetch_add(count, Ordering::SeqCst);
        lock(&shared.metrics).workload_size += count;
        if shared.deterministic {
            lock(&shared.det_incoming).extend(base..base + count);
        } else {
            for idx in base..base + count {
                let shard = {
                    let slot = lock(&slots[idx].slot);
                    shared.shard_of(&slot.exec)
                };
                lock(&shared.queues[shard % shared.queues.len()]).push_back(idx);
            }
        }
        drop(slots);
        shared.signal.bump();
        Ok(handles)
    }

    /// The outstanding frontier requests, in publish order. Each entry can be
    /// resumed with [`answer`](Self::answer); entries disappear when answered
    /// or when the owning update aborts (the restart publishes a new token).
    pub fn pending_frontiers(&self) -> Vec<PendingFrontier> {
        lock(&self.shared.pending)
            .iter()
            .map(|(token, entry)| PendingFrontier {
                token: FrontierToken(*token),
                update: entry.update,
                request: entry.request.clone(),
            })
            .collect()
    }

    /// Answers one outstanding frontier request, resuming the owning update.
    /// A token that no longer names a live request yields
    /// [`AnswerOutcome::Stale`] (harmless); an invalid decision is an error
    /// and the request stays pending under the same token for a retry.
    pub fn answer(
        &self,
        token: FrontierToken,
        decision: FrontierDecision,
    ) -> Result<AnswerOutcome, ChaseError> {
        let entry = lock(&self.shared.pending).remove(&token.0);
        let Some(entry) = entry else { return Ok(AnswerOutcome::Stale) };
        self.shared.apply_answer(token, entry, decision)
    }

    /// Runs a closure over the last-committed database state (a read-lock
    /// snapshot session). Do not hold long-running work inside the closure —
    /// writers (chase steps) queue behind it.
    pub fn read<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        f(&self.shared.db.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// The mapping set the engine chases against (fixed at construction).
    pub fn mappings(&self) -> &MappingSet {
        &self.shared.mappings
    }

    /// The metrics accumulated since the engine started (never reset;
    /// `wall_time` is not tracked by the engine — it belongs to whoever owns
    /// the session).
    pub fn metrics(&self) -> RunMetrics {
        lock(&self.shared.metrics).clone()
    }

    /// Per-update execution statistics, in submission order.
    pub fn update_stats(&self) -> Vec<(UpdateId, UpdateStats)> {
        let slots = self.shared.slots.read().unwrap_or_else(|e| e.into_inner());
        slots
            .iter()
            .map(|cell| {
                let slot = lock(&cell.slot);
                (slot.exec.id(), slot.exec.stats())
            })
            .collect()
    }

    /// The execution statistics of one update (index lookup — prefer this
    /// over scanning [`Self::update_stats`] on a long-lived engine).
    pub fn update_stats_of(&self, update: UpdateId) -> Option<UpdateStats> {
        let idx = self.shared.index_of(update)?;
        let cell = self.shared.slot_cell(idx);
        let slot = lock(&cell.slot);
        Some(slot.exec.stats())
    }

    /// The priority number the next submission will receive.
    pub fn next_update_id(&self) -> UpdateId {
        let slots = self.shared.slots.read().unwrap_or_else(|e| e.into_inner());
        UpdateId(self.shared.config.first_update_number + slots.len() as u64)
    }

    /// Number of in-flight (non-terminated, non-failed) updates.
    pub fn active_updates(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Whether nothing is running, queued or awaiting an answer. Quiescence
    /// is stable: with no in-flight work and no pending frontiers, only a new
    /// submission can create activity.
    pub fn is_quiescent(&self) -> bool {
        self.shared.active.load(Ordering::SeqCst) == 0
            && self.shared.in_flight.load(Ordering::SeqCst) == 0
            && lock(&self.shared.pending).is_empty()
    }

    /// The fatal error that stopped the engine, if any (the global
    /// [`SchedulerConfig::max_total_steps`] valve, or a poisoned decision).
    pub fn error(&self) -> Option<ChaseError> {
        lock(&self.shared.error).clone()
    }

    /// Blocks until the engine is quiescent, returning the fatal error if it
    /// failed instead. The caller is responsible for answering frontiers
    /// while waiting (or doing so from another thread / a [`ResolverPump`]) —
    /// an unanswered frontier never becomes quiescent, and on an inline
    /// engine (which has no threads to wait on) it is reported as an error
    /// rather than a hang.
    pub fn wait_quiescent(&self) -> Result<(), ChaseError> {
        loop {
            if let Some(e) = self.error() {
                return Err(e);
            }
            let gen = self.shared.signal.current();
            if self.is_quiescent() {
                return Ok(());
            }
            if self.shared.inline {
                self.shared.drive_inline()?;
                if self.is_quiescent() {
                    return Ok(());
                }
                if !lock(&self.shared.pending).is_empty() {
                    return Err(ChaseError::InvalidDecision(
                        "inline engine blocked on an unanswered frontier; \
                         answer it via pending_frontiers()/answer() or a ResolverPump"
                            .into(),
                    ));
                }
                continue;
            }
            self.shared.signal.wait_past(gen);
        }
    }

    /// Stops the workers and joins them (idempotent).
    fn halt(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.signal.bump();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }

    /// Shuts the engine down and returns the database, mappings and
    /// accumulated metrics. In-flight updates are left wherever their last
    /// committed step put them (partial chases are *not* rolled back — check
    /// [`is_quiescent`](Self::is_quiescent) first if that matters).
    pub fn shutdown(mut self) -> (Database, MappingSet, RunMetrics) {
        self.halt();
        let mut shared = Arc::clone(&self.shared);
        drop(self);
        // Workers are joined, but a cloned `UpdateHandle` may be mid-`wait()`
        // on another thread, holding a transient upgrade of its weak
        // reference. The stop flag (set by `halt`) makes every such call
        // return on its next check; keep nudging the signal until the last
        // transient strong reference drops.
        let shared = loop {
            match Arc::try_unwrap(shared) {
                Ok(inner) => break inner,
                Err(still_shared) => {
                    still_shared.signal.bump();
                    std::thread::yield_now();
                    shared = still_shared;
                }
            }
        };
        let db = shared.db.into_inner().unwrap_or_else(|e| e.into_inner());
        let metrics = shared.metrics.into_inner().unwrap_or_else(|e| e.into_inner());
        (db, shared.mappings, metrics)
    }

    pub(crate) fn db_read(&self) -> std::sync::RwLockReadGuard<'_, Database> {
        self.shared.db.read().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn db_write(&self) -> std::sync::RwLockWriteGuard<'_, Database> {
        self.shared.db.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl Drop for ExchangeEngine {
    fn drop(&mut self) {
        self.halt();
    }
}

impl std::fmt::Debug for ExchangeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExchangeEngine")
            .field("active", &self.active_updates())
            .field("pending_frontiers", &lock(&self.shared.pending).len())
            .field("deterministic", &self.shared.deterministic)
            .finish_non_exhaustive()
    }
}

/// A ticket for one submitted update. Clonable; outlives the engine safely
/// (methods needing the engine report shutdown instead of blocking forever).
#[derive(Clone)]
pub struct UpdateHandle {
    id: UpdateId,
    cell: Arc<SlotCell>,
    shared: Weak<EngineShared>,
}

impl UpdateHandle {
    /// The update's priority number.
    pub fn id(&self) -> UpdateId {
        self.id
    }

    /// Where the update currently stands. In free-running mode a
    /// `Terminated` status is definitive only once the engine is quiescent:
    /// a still-running lower-priority update can conflict with and revive it.
    pub fn status(&self) -> UpdateStatus {
        let slot = lock(&self.cell.slot);
        if slot.failed.is_some() {
            return UpdateStatus::Failed;
        }
        match slot.exec.state() {
            UpdateState::Ready => UpdateStatus::Running,
            UpdateState::AwaitingFrontier => UpdateStatus::AwaitingFrontier,
            UpdateState::Terminated => UpdateStatus::Terminated,
        }
    }

    /// Execution counters so far.
    pub fn stats(&self) -> UpdateStats {
        lock(&self.cell.slot).exec.stats()
    }

    /// The completion report, once the update has terminated — assembled
    /// through the same [`UpdateReport::for_execution`] path every runner
    /// uses.
    pub fn report(&self) -> Option<UpdateReport> {
        let slot = lock(&self.cell.slot);
        slot.exec.is_terminated().then(|| UpdateReport::for_execution(&slot.exec))
    }

    /// The update's terminal failure, if it exceeded its step budget.
    pub fn error(&self) -> Option<ChaseError> {
        lock(&self.cell.slot).failed.clone()
    }

    /// Blocks until the update terminates (returning its report) or fails
    /// (returning the error — the update's own budget error, or the engine's
    /// fatal error). Someone must be answering frontiers meanwhile; on an
    /// inline engine (which has no one else), a frontier reached while
    /// waiting is reported as an error rather than a hang.
    pub fn wait(&self) -> Result<UpdateReport, ChaseError> {
        loop {
            {
                let slot = lock(&self.cell.slot);
                if let Some(e) = &slot.failed {
                    return Err(e.clone());
                }
                if slot.exec.is_terminated() {
                    return Ok(UpdateReport::for_execution(&slot.exec));
                }
            }
            let Some(shared) = self.shared.upgrade() else {
                return Err(ChaseError::InvalidDecision(format!(
                    "engine shut down while update {} was in flight",
                    self.id
                )));
            };
            if let Some(e) = lock(&shared.error).clone() {
                return Err(e);
            }
            if shared.stop.load(Ordering::SeqCst) {
                return Err(ChaseError::InvalidDecision(format!(
                    "engine shut down while update {} was in flight",
                    self.id
                )));
            }
            if shared.inline {
                shared.drive_inline()?;
                let blocked = {
                    let slot = lock(&self.cell.slot);
                    slot.failed.is_none() && !slot.exec.is_terminated()
                };
                if blocked && !lock(&shared.pending).is_empty() {
                    return Err(ChaseError::InvalidDecision(format!(
                        "update {} is blocked on a frontier on an inline engine; \
                         answer it via pending_frontiers()/answer() or a ResolverPump",
                        self.id
                    )));
                }
                continue;
            }
            let gen = shared.signal.current();
            {
                let slot = lock(&self.cell.slot);
                if slot.failed.is_some() || slot.exec.is_terminated() {
                    continue;
                }
            }
            shared.signal.wait_past(gen);
        }
    }
}

impl std::fmt::Debug for UpdateHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpdateHandle")
            .field("id", &self.id)
            .field("status", &self.status())
            .finish()
    }
}

/// Compatibility adapter between the pull-based engine and the callback world:
/// drains [`ExchangeEngine::pending_frontiers`] through any existing
/// [`FrontierResolver`], consulting it with the blocked update's snapshot
/// exactly like the batch schedulers did.
pub struct ResolverPump<'e, 'r> {
    engine: &'e ExchangeEngine,
    resolver: &'r mut dyn FrontierResolver,
}

impl<'e, 'r> ResolverPump<'e, 'r> {
    /// Creates a pump over `engine` feeding decisions from `resolver`.
    pub fn new(engine: &'e ExchangeEngine, resolver: &'r mut dyn FrontierResolver) -> Self {
        ResolverPump { engine, resolver }
    }

    /// Answers every currently outstanding frontier request (in publish
    /// order), returning how many were applied. Stale tokens are skipped; an
    /// invalid decision from the resolver is an error.
    pub fn drain(&mut self) -> Result<usize, ChaseError> {
        let engine = self.engine;
        let mut answered = 0usize;
        loop {
            let pending = engine.pending_frontiers();
            if pending.is_empty() {
                return Ok(answered);
            }
            for pf in pending {
                let resolver = &mut *self.resolver;
                let decision =
                    engine.read(|db| resolver.resolve(&db.snapshot(pf.update), &pf.request));
                match engine.answer(pf.token, decision)? {
                    AnswerOutcome::Applied => answered += 1,
                    AnswerOutcome::Stale => {}
                }
            }
        }
    }

    /// Pumps until the engine is quiescent (every submitted update terminated
    /// or failed, no outstanding frontiers), propagating the engine's fatal
    /// error if it stops instead.
    pub fn run_until_quiescent(&mut self) -> Result<(), ChaseError> {
        loop {
            if self.engine.shared.inline {
                // Caller-driven engine: chase until idle or blocked, then
                // answer. Every loop iteration either makes chase progress,
                // answers a frontier, or observes quiescence — no waiting.
                self.engine.shared.drive_inline()?;
            }
            self.drain()?;
            if let Some(e) = self.engine.error() {
                return Err(e);
            }
            let gen = self.engine.shared.signal.current();
            if self.engine.is_quiescent() {
                return Ok(());
            }
            if self.engine.shared.inline {
                continue;
            }
            // A frontier published between drain() returning empty and the
            // generation capture has already bumped the generation we are
            // about to sleep on — with every worker parked behind it, nobody
            // would ever bump again. Re-checking the queue *after* the
            // capture closes the lost-wakeup window: either we see the entry
            // here and drain it, or its publish bumps past `gen` and the
            // wait returns immediately.
            if !lock(&self.engine.shared.pending).is_empty() {
                continue;
            }
            self.engine.shared.signal.wait_past(gen);
        }
    }
}

impl std::fmt::Debug for ResolverPump<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResolverPump").field("engine", &self.engine).finish_non_exhaustive()
    }
}
