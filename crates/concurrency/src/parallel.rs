//! The multi-threaded chase scheduler: [`ParallelRun`].
//!
//! Where [`ConcurrentRun`](crate::ConcurrentRun) *simulates* concurrency by
//! interleaving chase steps in one thread, `ParallelRun` executes them on N
//! OS worker threads:
//!
//! * **Sharded run queues** — ready updates wait in per-worker queues sharded
//!   by the relations their next step can touch
//!   ([`UpdateExecution::next_touched_relations`], the delta-driven queue's
//!   relation index), so updates contending on the same relations tend to
//!   serialise on the same worker while disjoint ones run elsewhere. Idle
//!   workers steal from other shards.
//! * **Two-phase steps over one shared database** — the database sits behind
//!   an `RwLock`. A step's write half ([`UpdateExecution::begin_step`]) runs
//!   under the write lock; its read half ([`UpdateExecution::finish_step`]
//!   — violation detection, queue maintenance, repair planning) runs under a
//!   read lock, so the analysis of many updates overlaps. The step's reads
//!   are recorded in the read log *before* the read lock is released, which
//!   makes the Algorithm 4 guarantee carry over: any write committed after a
//!   read's snapshot must observe that read in the log when it validates.
//! * **Lock-striped logs** — conflict validation walks the per-relation
//!   stripes of [`StripedReadLog`] / [`StripedWriteLog`], so workers whose
//!   steps touch disjoint relations never contend on a log lock.
//! * **Owner-performed aborts** — every update is owned by at most one worker
//!   at a time. A validator that must abort a running update flags it; the
//!   owner executes the rollback at its next commit point. Because a
//!   free-running abort can execute long after it was decided, the rollback
//!   itself is validated like a write: updates whose recorded reads it
//!   retroactively invalidates are aborted too (the single-threaded
//!   scheduler aborts synchronously, so its abort sets are already closed).
//!
//! Two modes, selected by [`SchedulerConfig::deterministic`]:
//!
//! * **Deterministic** (default): a sequencer hands workers chase steps in
//!   the exact round-robin serialisation order of
//!   [`ConcurrentRun`](crate::ConcurrentRun), so the final database, metrics
//!   and abort sets are byte-identical to the single-threaded reference at
//!   any worker count — the mode the experiment sweep and the figure
//!   binaries use. The determinism tax is that steps cannot overlap.
//! * **Free-running**: workers pull from the sharded queues with no global
//!   order; read halves genuinely overlap. Results are schedule-dependent
//!   (abort counts vary run to run) but always consistent: the paper's
//!   priority argument — conflicts only ever abort the *higher*-numbered
//!   update — guarantees global progress, and every final state satisfies
//!   all mappings.
//!
//! Lock order (outermost first): slot → resolver → database → tracker →
//! metrics → log stripes. A worker never blocks on a second slot lock while
//! holding one (victim slots are `try_lock`ed; on failure the victim is
//! flagged and its owner acts).

use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, RwLock};
use std::time::Instant;

use youtopia_core::{
    ChaseError, FrontierResolver, InitialOp, ReadQuery, StepOutcome, UpdateExecution, UpdateState,
};
use youtopia_mappings::MappingSet;
use youtopia_storage::{Database, TupleChange, UpdateId};

use crate::deps::DependencyTracker;
use crate::metrics::RunMetrics;
use crate::scheduler::{SchedulerConfig, SchedulingPolicy};
use crate::striped::{StripedReadLog, StripedWriteLog};

struct Slot {
    exec: UpdateExecution,
    /// Rounds remaining before a pending frontier request is answered
    /// (deterministic mode only; free-running answers immediately — it has no
    /// notion of rounds).
    frontier_wait: usize,
}

struct SlotCell {
    slot: Mutex<Slot>,
    /// Set by a validator that could not lock this slot (its owner holds it);
    /// the owner executes the abort at its next commit point. Cleared only by
    /// whoever performs the abort, under the slot lock.
    abort_requested: AtomicBool,
}

/// The sequencer of deterministic mode: the position of the round-robin
/// cursor, plus the progress/termination bookkeeping of the reference loop.
struct DetCursor {
    idx: usize,
    progressed: bool,
    finished: bool,
}

/// A worker-pool execution of a batch of updates over one shared database.
///
/// Mirrors the [`ConcurrentRun`](crate::ConcurrentRun) API; see the module
/// docs for the execution model and
/// [`SchedulerConfig::workers`] / [`SchedulerConfig::deterministic`] for the
/// knobs.
pub struct ParallelRun {
    db: RwLock<Database>,
    mappings: MappingSet,
    slots: Vec<SlotCell>,
    all_ids: Vec<UpdateId>,
    first_number: u64,
    read_log: StripedReadLog,
    write_log: StripedWriteLog,
    tracker: Mutex<Box<dyn DependencyTracker>>,
    metrics: Mutex<RunMetrics>,
    config: SchedulerConfig,
    workers: usize,
    /// Sharded run queues of slot indices (free-running mode).
    queues: Vec<Mutex<VecDeque<usize>>>,
    /// Number of slots not currently terminated.
    active: AtomicUsize,
    /// Number of workers currently processing a slot.
    in_flight: AtomicUsize,
    stop: AtomicBool,
    error: Mutex<Option<ChaseError>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The change a rollback performs when it undoes `change`: rolling back an
/// insert deletes the tuple, rolling back a delete revives it, rolling back a
/// modification swaps the images.
fn invert_change(change: &TupleChange) -> TupleChange {
    match change {
        TupleChange::Inserted { relation, tuple, values } => {
            TupleChange::Deleted { relation: *relation, tuple: *tuple, old: values.clone() }
        }
        TupleChange::Deleted { relation, tuple, old } => {
            TupleChange::Inserted { relation: *relation, tuple: *tuple, values: old.clone() }
        }
        TupleChange::Modified { relation, tuple, old, new } => TupleChange::Modified {
            relation: *relation,
            tuple: *tuple,
            old: new.clone(),
            new: old.clone(),
        },
    }
}

impl ParallelRun {
    /// Creates a run over `db` for the given initial operations, with update
    /// numbers assigned in submission order from `first_update_number` — the
    /// same contract as [`ConcurrentRun::new`](crate::ConcurrentRun::new).
    /// Worker count and mode come from [`SchedulerConfig::workers`] (0 = one
    /// per available core) and [`SchedulerConfig::deterministic`].
    pub fn new(
        db: Database,
        mappings: MappingSet,
        ops: Vec<InitialOp>,
        first_update_number: u64,
        config: SchedulerConfig,
    ) -> ParallelRun {
        let slots: Vec<SlotCell> = ops
            .into_iter()
            .enumerate()
            .map(|(i, op)| SlotCell {
                slot: Mutex::new(Slot {
                    exec: UpdateExecution::with_mode(
                        UpdateId(first_update_number + i as u64),
                        op,
                        config.chase_mode,
                    ),
                    frontier_wait: 0,
                }),
                abort_requested: AtomicBool::new(false),
            })
            .collect();
        let all_ids: Vec<UpdateId> = slots.iter().map(|c| lock(&c.slot).exec.id()).collect();
        let workers = if config.workers > 0 {
            config.workers
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        };
        let metrics = RunMetrics { workload_size: slots.len(), ..RunMetrics::default() };
        let queue_count = workers.max(1);
        ParallelRun {
            db: RwLock::new(db),
            mappings,
            active: AtomicUsize::new(slots.len()),
            slots,
            all_ids,
            first_number: first_update_number,
            read_log: StripedReadLog::default(),
            write_log: StripedWriteLog::default(),
            tracker: Mutex::new(config.tracker.build()),
            metrics: Mutex::new(metrics),
            config,
            workers,
            queues: (0..queue_count).map(|_| Mutex::new(VecDeque::new())).collect(),
            in_flight: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            error: Mutex::new(None),
        }
    }

    /// The metrics collected so far.
    pub fn metrics(&self) -> RunMetrics {
        lock(&self.metrics).clone()
    }

    /// Runs a closure over the shared database (e.g. to inspect the final
    /// state after [`Self::run`]).
    pub fn with_database<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        f(&self.db.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Consumes the run, returning the database, mappings and metrics.
    pub fn into_parts(self) -> (Database, MappingSet, RunMetrics) {
        let db = self.db.into_inner().unwrap_or_else(|e| e.into_inner());
        let metrics = self.metrics.into_inner().unwrap_or_else(|e| e.into_inner());
        (db, self.mappings, metrics)
    }

    /// Per-update execution statistics (after or during a run).
    pub fn update_stats(&self) -> Vec<(UpdateId, youtopia_core::UpdateStats)> {
        self.slots
            .iter()
            .map(|c| {
                let slot = lock(&c.slot);
                (slot.exec.id(), slot.exec.stats())
            })
            .collect()
    }

    /// Runs every update to termination on the worker pool, consulting
    /// `resolver` for frontier operations, and returns the collected metrics.
    pub fn run(
        &mut self,
        resolver: &mut (dyn FrontierResolver + Send),
    ) -> Result<RunMetrics, ChaseError> {
        let start = Instant::now();
        let resolver = Mutex::new(resolver);
        if self.config.deterministic {
            self.run_deterministic(&resolver)?;
        } else {
            self.run_free(&resolver)?;
        }
        let mut metrics = lock(&self.metrics);
        metrics.wall_time = start.elapsed();
        Ok(metrics.clone())
    }

    fn fail(&self, e: ChaseError) {
        let mut slot = lock(&self.error);
        if slot.is_none() {
            *slot = Some(e);
        }
        self.stop.store(true, Ordering::SeqCst);
    }

    fn take_error(&self) -> Result<(), ChaseError> {
        match lock(&self.error).take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn index_of(&self, update: UpdateId) -> Option<usize> {
        let idx = update.0.checked_sub(self.first_number)? as usize;
        (idx < self.slots.len()).then_some(idx)
    }

    // ------------------------------------------------------------------
    // Shared step machinery (both modes)
    // ------------------------------------------------------------------

    /// Records the read queries a step (or frontier resolution) performed,
    /// exactly like the single-threaded scheduler: dependencies first, then
    /// the retained read log. The caller holds the database read lock —
    /// recording before that lock is released is what guarantees any
    /// later-committing write sees these reads when it validates.
    fn record_reads_locked(&self, db: &Database, reader: UpdateId, reads: Vec<ReadQuery>) {
        if reads.is_empty() {
            return;
        }
        {
            let snap = db.snapshot(reader);
            lock(&self.tracker).record_reads(
                reader,
                &reads,
                &self.write_log,
                &snap,
                &self.mappings,
            );
        }
        self.read_log.record(reader, reads, &self.mappings);
    }

    /// Executes one chase step for the locked slot: write half under the
    /// database write lock, read half (analysis, logging, read recording and
    /// conflict collection) under a read lock. Returns the step outcome and
    /// the consolidated abort set — the caller decides how to execute the
    /// aborts (synchronously in deterministic mode, via flags when
    /// free-running).
    fn step_and_validate(
        &self,
        slot: &mut Slot,
    ) -> Result<(StepOutcome, BTreeSet<UpdateId>), ChaseError> {
        // Safety valve, checked per step so the error names the update that
        // was actually stepping when the limit tripped.
        if lock(&self.metrics).steps >= self.config.max_total_steps {
            return Err(ChaseError::StepLimitExceeded {
                update: slot.exec.id(),
                limit: self.config.max_total_steps,
            });
        }
        let applied = {
            let mut db = self.db.write().unwrap_or_else(|e| e.into_inner());
            slot.exec.begin_step(&mut db)?
        };
        let db = self.db.read().unwrap_or_else(|e| e.into_inner());
        let outcome = slot.exec.finish_step(&db, &self.mappings, applied)?;
        {
            let mut metrics = lock(&self.metrics);
            metrics.steps += 1;
            metrics.changes += outcome.writes.iter().map(|w| w.changes.len()).sum::<usize>();
        }
        let id = outcome.update;

        // Log writes (for dependency tracking) and reads (for conflicts).
        self.write_log.push_all(&outcome.writes);
        lock(&self.tracker).record_writes(id, &outcome.writes);
        self.record_reads_locked(&db, id, outcome.reads.clone());

        // Algorithm 4: check every change against the stored reads of
        // higher-numbered updates; cascade through the tracker.
        let changes: Vec<TupleChange> =
            outcome.writes.iter().flat_map(|w| w.changes.iter().cloned()).collect();
        let to_abort = self.collect_aborts_locked(&db, id, &changes);
        Ok((outcome, to_abort))
    }

    /// Computes the consolidated abort set caused by a step's changes —
    /// direct conflicts plus the transitive read-dependents of each directly
    /// conflicting update — with the same candidate walk and request
    /// accounting as the single-threaded scheduler, over the striped logs.
    /// The caller holds the database read lock.
    fn collect_aborts_locked(
        &self,
        db: &Database,
        writer: UpdateId,
        changes: &[TupleChange],
    ) -> BTreeSet<UpdateId> {
        let mut pending: BTreeSet<UpdateId> = BTreeSet::new();
        if changes.is_empty() {
            return pending;
        }
        let tracker = lock(&self.tracker);
        // Request counters accumulate locally so the global metrics mutex is
        // taken once, at the end — other workers' per-step counter bumps must
        // not queue behind this walk's query re-evaluation.
        let mut direct_requests = 0usize;
        let mut cascading_requests = 0usize;
        for change in changes {
            let relation = change.relation();
            for reader in self.read_log.readers_above_touching(writer, relation) {
                let conflicts = {
                    let snapshot = db.snapshot(reader);
                    self.read_log
                        .queries_touching(reader, relation)
                        .iter()
                        .any(|q| q.affected_by(&snapshot, &self.mappings, change))
                };
                if !conflicts {
                    continue;
                }
                direct_requests += 1;
                pending.insert(reader);
                // Cascade: everyone who (transitively) read from the aborted
                // reader must abort too; every request is counted, even when
                // the target is already marked (see ConcurrentRun).
                let mut stack = vec![reader];
                let mut visited: BTreeSet<UpdateId> = BTreeSet::new();
                visited.insert(reader);
                while let Some(a) = stack.pop() {
                    for dependent in tracker.dependents_of(a, &self.all_ids) {
                        if dependent <= writer {
                            continue;
                        }
                        cascading_requests += 1;
                        pending.insert(dependent);
                        if visited.insert(dependent) {
                            stack.push(dependent);
                        }
                    }
                }
            }
        }
        if direct_requests > 0 || cascading_requests > 0 {
            let mut metrics = lock(&self.metrics);
            metrics.direct_conflict_requests += direct_requests;
            metrics.cascading_abort_requests += cascading_requests;
        }
        pending
    }

    /// Performs the consolidated abort of a slot whose lock the caller holds:
    /// roll back its writes, clear its logs and dependency bookkeeping, reset
    /// it to redo its initial operation. `revive` is true when the slot had
    /// already terminated — the abort brings it back into the active count
    /// and the caller must re-enqueue it.
    ///
    /// Free-running mode additionally *validates the rollback itself*: the
    /// single-threaded scheduler aborts synchronously inside the validation
    /// that decided them, so no reader can slip in between, but a
    /// free-running abort can execute long after it was decided — an update
    /// that read the victim's data in the gap read data that is now being
    /// undone. Returns the updates whose recorded reads the rollback
    /// retroactively invalidated (checked exactly, per read query — never via
    /// the tracker, whose conservative answers would make abort waves feed on
    /// themselves under `NAIVE`); the caller feeds them back into the abort
    /// machinery.
    fn execute_abort(&self, cell: &SlotCell, slot: &mut Slot, revive: bool) -> Vec<UpdateId> {
        let victim = slot.exec.id();
        // Free-running only: capture the victim's logged changes before they
        // go away. Their inverses are what the rollback is about to do to the
        // database, and a rollback is a write like any other — updates whose
        // recorded reads it retroactively invalidates read data that never
        // happened, and must abort. (The deterministic mode aborts
        // synchronously inside the validation that decided them, exactly like
        // the single-threaded reference, so no reader can slip in between and
        // this validation would only skew the reference metrics.)
        let rolled_back: Vec<TupleChange> = if self.config.deterministic {
            Vec::new()
        } else {
            self.write_log.changes_of(victim).iter().map(invert_change).collect()
        };
        {
            let mut db = self.db.write().unwrap_or_else(|e| e.into_inner());
            db.rollback_update(victim);
        }
        slot.exec.reset_for_restart();
        slot.frontier_wait = 0;
        self.read_log.clear(victim);
        self.write_log.remove_update(victim);
        {
            let mut tracker = lock(&self.tracker);
            tracker.note_abort(victim);
            tracker.clear_update(victim);
        }
        lock(&self.metrics).aborts += 1;
        let mut undone_readers: Vec<UpdateId> = Vec::new();
        if !rolled_back.is_empty() {
            let db = self.db.read().unwrap_or_else(|e| e.into_inner());
            for change in &rolled_back {
                let relation = change.relation();
                for reader in self.read_log.readers_above_touching(victim, relation) {
                    if undone_readers.contains(&reader) {
                        continue;
                    }
                    let snapshot = db.snapshot(reader);
                    if self
                        .read_log
                        .queries_touching(reader, relation)
                        .iter()
                        .any(|q| q.affected_by(&snapshot, &self.mappings, change))
                    {
                        undone_readers.push(reader);
                    }
                }
            }
            if !undone_readers.is_empty() {
                // One metrics acquisition after the walk — query re-evaluation
                // must not hold the global counter mutex (see
                // collect_aborts_locked).
                lock(&self.metrics).direct_conflict_requests += undone_readers.len();
            }
        }
        cell.abort_requested.store(false, Ordering::SeqCst);
        if revive {
            self.active.fetch_add(1, Ordering::SeqCst);
        }
        undone_readers
    }

    /// Answers the locked slot's pending frontier request.
    fn answer_frontier_locked(
        &self,
        slot: &mut Slot,
        resolver: &Mutex<&mut (dyn FrontierResolver + Send)>,
    ) -> Result<(), ChaseError> {
        let id = slot.exec.id();
        let request = slot.exec.pending_frontier().expect("state is AwaitingFrontier").clone();
        // One read-lock session covers the resolver's snapshot, the frontier
        // resolution and the recording of its correction queries: a write
        // committing after the resolver looked at the database then needs the
        // write lock, i.e. happens after this session ends — by which time
        // the reads it must be validated against are in the log. (Splitting
        // the session would let such a write validate in the gap and miss
        // them.) The resolver is acquired before the database per the module
        // lock order, and released as soon as the decision is made.
        let mut resolver = lock(resolver);
        let db = self.db.read().unwrap_or_else(|e| e.into_inner());
        let decision = resolver.resolve(&db.snapshot(id), &request);
        drop(resolver);
        let reads = slot.exec.resolve_frontier(&self.mappings, decision)?;
        lock(&self.metrics).frontier_ops += 1;
        self.record_reads_locked(&db, id, reads);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Deterministic mode: the reference serialisation order on N threads
    // ------------------------------------------------------------------

    /// Deterministic driver: workers compete for the sequencer and execute
    /// slot actions in the exact loop order of the single-threaded scheduler
    /// — round-robin over slots, frontier waits decremented per round, aborts
    /// performed synchronously. One worker acts at a time; which OS thread
    /// performs an action is the only thing the thread count changes.
    fn run_deterministic(
        &self,
        resolver: &Mutex<&mut (dyn FrontierResolver + Send)>,
    ) -> Result<(), ChaseError> {
        let cursor = Mutex::new(DetCursor { idx: 0, progressed: false, finished: false });
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                scope.spawn(|| loop {
                    let mut cur = lock(&cursor);
                    if cur.finished || self.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Err(e) = self.det_action(&mut cur, resolver) {
                        cur.finished = true;
                        drop(cur);
                        self.fail(e);
                        break;
                    }
                });
            }
        });
        self.take_error()
    }

    /// One sequencer action: the body of the reference loop for the slot at
    /// the cursor, plus the round bookkeeping (all-terminated check at round
    /// start, stall check at round end).
    fn det_action(
        &self,
        cur: &mut DetCursor,
        resolver: &Mutex<&mut (dyn FrontierResolver + Send)>,
    ) -> Result<(), ChaseError> {
        if cur.idx == 0 && self.slots.iter().all(|c| lock(&c.slot).exec.is_terminated()) {
            cur.finished = true;
            return Ok(());
        }
        let idx = cur.idx;
        let state = lock(&self.slots[idx].slot).exec.state();
        match state {
            UpdateState::Terminated => {}
            UpdateState::AwaitingFrontier => {
                let mut slot = lock(&self.slots[idx].slot);
                if slot.frontier_wait > 0 {
                    slot.frontier_wait -= 1;
                } else {
                    self.answer_frontier_locked(&mut slot, resolver)?;
                }
                cur.progressed = true;
            }
            UpdateState::Ready => {
                self.det_run_ready_slot(idx, resolver)?;
                cur.progressed = true;
            }
        }
        cur.idx += 1;
        if cur.idx == self.slots.len() {
            cur.idx = 0;
            if !cur.progressed {
                // Every non-terminated update is blocked with no way to make
                // progress; this cannot happen with a responsive resolver.
                return Err(ChaseError::InvalidDecision(
                    "scheduler stalled: no update can make progress".into(),
                ));
            }
            cur.progressed = false;
        }
        Ok(())
    }

    /// The reference `run_ready_slot`: step, validate, abort synchronously,
    /// honour the scheduling policy. The whole routine runs under the
    /// sequencer, so victim slot locks are uncontended.
    fn det_run_ready_slot(
        &self,
        idx: usize,
        _resolver: &Mutex<&mut (dyn FrontierResolver + Send)>,
    ) -> Result<(), ChaseError> {
        loop {
            let mut slot = lock(&self.slots[idx].slot);
            let (outcome, to_abort) = self.step_and_validate(&mut slot)?;
            drop(slot);
            for &victim in &to_abort {
                let Some(vidx) = self.index_of(victim) else { continue };
                let cell = &self.slots[vidx];
                let mut vslot = lock(&cell.slot);
                self.execute_abort(cell, &mut vslot, false);
            }
            let mut slot = lock(&self.slots[idx].slot);
            if outcome.frontier_request.is_some() {
                slot.frontier_wait = self.config.frontier_delay_rounds;
            }
            // Step-level round robin hands control back after one step; the
            // stratum policy keeps going while the update remains ready.
            if self.config.policy == SchedulingPolicy::StepRoundRobin
                || slot.exec.state() != UpdateState::Ready
            {
                break;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Free-running mode: sharded queues, overlapping read halves
    // ------------------------------------------------------------------

    /// Free-running driver: seed the sharded queues and let the workers pull.
    fn run_free(
        &self,
        resolver: &Mutex<&mut (dyn FrontierResolver + Send)>,
    ) -> Result<(), ChaseError> {
        for idx in 0..self.slots.len() {
            let shard = {
                let slot = lock(&self.slots[idx].slot);
                self.shard_of(&slot.exec)
            };
            self.enqueue(shard, idx);
        }
        std::thread::scope(|scope| {
            for me in 0..self.workers {
                scope.spawn(move || self.free_worker(me, resolver));
            }
        });
        self.take_error()
    }

    /// Shard key of an update: the smallest relation its next step can touch
    /// (pending write targets plus the violation queue's relation index), so
    /// updates about to work on the same relations land in the same queue.
    fn shard_of(&self, exec: &UpdateExecution) -> usize {
        match exec.next_touched_relations().first() {
            Some(relation) => relation.0 as usize % self.queues.len(),
            // Unknown footprint (e.g. a pending null-replacement): spread by
            // update number.
            None => exec.id().0 as usize % self.queues.len(),
        }
    }

    fn enqueue(&self, shard: usize, idx: usize) {
        lock(&self.queues[shard % self.queues.len()]).push_back(idx);
    }

    /// Pops a ready slot, preferring the worker's own shard and stealing from
    /// the others in ring order.
    fn pop_slot(&self, me: usize) -> Option<usize> {
        let n = self.queues.len();
        for k in 0..n {
            if let Some(idx) = lock(&self.queues[(me + k) % n]).pop_front() {
                return Some(idx);
            }
        }
        None
    }

    fn free_worker(&self, me: usize, resolver: &Mutex<&mut (dyn FrontierResolver + Send)>) {
        loop {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let Some(idx) = self.pop_slot(me) else {
                // Exit only when nothing is active anywhere: a popped-but-
                // unfinished slot keeps `active` positive, and only in-flight
                // workers can revive terminated slots or set abort flags.
                if self.active.load(Ordering::SeqCst) == 0
                    && self.in_flight.load(Ordering::SeqCst) == 0
                {
                    break;
                }
                std::thread::yield_now();
                continue;
            };
            self.in_flight.fetch_add(1, Ordering::SeqCst);
            let result = self.process_slot_free(idx, resolver);
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            if let Err(e) = result {
                self.fail(e);
                break;
            }
        }
    }

    /// Runs the popped slot until it terminates, blocks the worker on nothing,
    /// or (under step-level round robin) hands the update back to the queues
    /// after one step.
    fn process_slot_free(
        &self,
        idx: usize,
        resolver: &Mutex<&mut (dyn FrontierResolver + Send)>,
    ) -> Result<(), ChaseError> {
        let cell = &self.slots[idx];
        let mut slot = lock(&cell.slot);
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            // A validator flagged us while we were stepping (or while the
            // update sat in the queue): execute the abort, then continue from
            // the fresh restart.
            if cell.abort_requested.load(Ordering::SeqCst) {
                let dependents = self.execute_abort(cell, &mut slot, false);
                drop(slot);
                self.abort_all(dependents);
                slot = lock(&cell.slot);
                continue;
            }
            match slot.exec.state() {
                UpdateState::Terminated => {
                    self.active.fetch_sub(1, Ordering::SeqCst);
                    drop(slot);
                    self.settle_flag(idx);
                    return Ok(());
                }
                UpdateState::AwaitingFrontier => {
                    // No scheduler rounds exist here, so frontier_delay_rounds
                    // does not apply: the (simulated) user answers as soon as
                    // a worker is free to ask.
                    self.answer_frontier_locked(&mut slot, resolver)?;
                }
                UpdateState::Ready => {
                    let (_outcome, to_abort) = self.step_and_validate(&mut slot)?;
                    if !to_abort.is_empty() {
                        // Abort execution takes victim locks; ours stays held
                        // (victims are always other, higher-numbered updates).
                        self.abort_all(to_abort.iter().copied().collect());
                    }
                    if slot.exec.state() == UpdateState::Ready
                        && self.config.policy == SchedulingPolicy::StepRoundRobin
                    {
                        if cell.abort_requested.load(Ordering::SeqCst) {
                            continue; // execute our own abort before requeueing
                        }
                        let shard = self.shard_of(&slot.exec);
                        drop(slot);
                        self.enqueue(shard, idx);
                        self.settle_flag(idx);
                        return Ok(());
                    }
                }
            }
        }
    }

    /// Executes (or requests) the abort of every update in the worklist,
    /// feeding each executed abort's at-abort-time dependents back in.
    /// Victims we cannot lock are flagged for their owner; `settle_flag`
    /// closes the race with an owner that released without seeing the flag.
    fn abort_all(&self, victims: Vec<UpdateId>) {
        let mut work: VecDeque<UpdateId> = victims.into();
        while let Some(victim) = work.pop_front() {
            let Some(vidx) = self.index_of(victim) else { continue };
            let cell = &self.slots[vidx];
            match cell.slot.try_lock() {
                Ok(mut vslot) => {
                    let was_terminated = vslot.exec.is_terminated();
                    let dependents = self.execute_abort(cell, &mut vslot, was_terminated);
                    if was_terminated {
                        // Nobody owns a terminated slot and it sits in no
                        // queue: the abort revives it, so hand it back.
                        let shard = self.shard_of(&vslot.exec);
                        drop(vslot);
                        self.enqueue(shard, vidx);
                    }
                    work.extend(dependents);
                }
                Err(_) => {
                    cell.abort_requested.store(true, Ordering::SeqCst);
                    // If the owner released between our failed try_lock and
                    // the store, nobody may ever look at the flag again;
                    // settling re-checks. If the lock is held *now*, the
                    // holder's post-release settle happens after our store
                    // and is guaranteed to see it.
                    self.settle_flag(vidx);
                }
            }
        }
    }

    /// Ensures a requested abort on an unowned slot is not lost: called after
    /// every slot-lock release and after flagging a busy victim. Terminated
    /// victims are executed here (and revived); queued victims are left for
    /// the next worker that pops them.
    fn settle_flag(&self, idx: usize) {
        let cell = &self.slots[idx];
        loop {
            if !cell.abort_requested.load(Ordering::SeqCst) {
                return;
            }
            let Ok(mut slot) = cell.slot.try_lock() else {
                // Someone owns the slot right now; their post-release settle
                // will see the flag.
                return;
            };
            if !cell.abort_requested.load(Ordering::SeqCst) {
                return;
            }
            if !slot.exec.is_terminated() {
                // The slot is in a run queue; its next owner executes the
                // abort before stepping.
                return;
            }
            let dependents = self.execute_abort(cell, &mut slot, true);
            let shard = self.shard_of(&slot.exec);
            drop(slot);
            self.enqueue(shard, idx);
            self.abort_all(dependents);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::TrackerKind;
    use crate::scheduler::ConcurrentRun;
    use youtopia_core::RandomResolver;
    use youtopia_mappings::satisfies_all;
    use youtopia_storage::Value;

    fn example_db() -> (Database, MappingSet) {
        let mut db = Database::new();
        db.add_relation("A", ["location", "name"]).unwrap();
        db.add_relation("T", ["attraction", "company", "tour_start"]).unwrap();
        db.add_relation("R", ["company", "attraction", "review"]).unwrap();
        db.add_relation("V", ["city", "convention"]).unwrap();
        db.add_relation("E", ["convention", "attraction"]).unwrap();
        let mut mappings = MappingSet::new();
        mappings
            .add_parsed_many(
                db.catalog(),
                "
                sigma3: A(l, n) & T(n, c, cs) -> exists r. R(c, n, r)
                sigma4: V(cv, x) & T(n, c, cv) -> E(x, n)
                ",
            )
            .unwrap();
        let u = UpdateId(0);
        db.insert_by_name("A", &["Geneva", "Geneva Winery"], u);
        db.insert_by_name("T", &["Geneva Winery", "XYZ", "Syracuse"], u);
        db.insert_by_name("R", &["XYZ", "Geneva Winery", "Great!"], u);
        db.insert_by_name("V", &["Syracuse", "Science Conf"], u);
        db.insert_by_name("E", &["Science Conf", "Geneva Winery"], u);
        (db, mappings)
    }

    fn example_ops(db: &Database) -> Vec<InitialOp> {
        let r = db.relation_id("R").unwrap();
        let v = db.relation_id("V").unwrap();
        let review = db
            .scan(r, UpdateId::OMNISCIENT)
            .into_iter()
            .find(|(_, d)| d[0] == Value::constant("XYZ"))
            .map(|(id, _)| id)
            .unwrap();
        let mut ops = vec![
            InitialOp::Delete { relation: r, tuple: review },
            InitialOp::Insert {
                relation: v,
                values: vec![Value::constant("Syracuse"), Value::constant("Math Conf")],
            },
        ];
        for i in 0..4 {
            ops.push(InitialOp::Insert {
                relation: v,
                values: vec![Value::constant("Syracuse"), Value::constant(&format!("Conf{i}"))],
            });
        }
        ops
    }

    /// Byte-exact rendering of the database contents for equality checks.
    fn render(db: &Database) -> String {
        let mut out = String::new();
        for name in ["A", "T", "R", "V", "E"] {
            let rel = db.relation_id(name).unwrap();
            out.push_str(&format!("{name}: {:?}\n", db.scan(rel, UpdateId::OMNISCIENT)));
        }
        out.push_str(&format!("nulls: {}\n", db.null_counter()));
        out
    }

    fn scrub(mut m: RunMetrics) -> RunMetrics {
        m.wall_time = std::time::Duration::ZERO;
        m
    }

    #[test]
    fn deterministic_mode_is_byte_identical_to_concurrent_run_at_any_worker_count() {
        let (db, mappings) = example_db();
        for tracker in TrackerKind::all() {
            let config =
                SchedulerConfig { tracker, frontier_delay_rounds: 3, ..SchedulerConfig::default() };
            let mut reference =
                ConcurrentRun::new(db.clone(), mappings.clone(), example_ops(&db), 1, config);
            let ref_metrics = reference.run(&mut RandomResolver::seeded(5)).unwrap();
            let ref_stats = reference.update_stats();
            let (ref_db, _, _) = reference.into_parts();

            for workers in [1usize, 2, 4] {
                let par_config = SchedulerConfig { workers, deterministic: true, ..config };
                let mut run =
                    ParallelRun::new(db.clone(), mappings.clone(), example_ops(&db), 1, par_config);
                let metrics = run.run(&mut RandomResolver::seeded(5)).unwrap();
                assert_eq!(
                    scrub(metrics),
                    scrub(ref_metrics.clone()),
                    "{tracker}, {workers} workers: metrics must match the reference"
                );
                assert_eq!(run.update_stats(), ref_stats, "{tracker}, {workers} workers");
                let (par_db, _, _) = run.into_parts();
                assert_eq!(render(&par_db), render(&ref_db), "{tracker}, {workers} workers");
            }
        }
    }

    #[test]
    fn free_running_mode_leaves_a_consistent_database() {
        let mut db = Database::new();
        db.add_relation("C", ["city"]).unwrap();
        db.add_relation("S", ["code", "location", "city_served"]).unwrap();
        let mut mappings = MappingSet::new();
        mappings
            .add_parsed_many(
                db.catalog(),
                "
                sigma1: C(c) -> exists a, l. S(a, l, c)
                sigma2: S(a, c, c2) -> C(c) & C(c2)
                ",
            )
            .unwrap();
        let c = db.relation_id("C").unwrap();
        let ops: Vec<InitialOp> = (0..12)
            .map(|i| InitialOp::Insert {
                relation: c,
                values: vec![Value::constant(&format!("City{i}"))],
            })
            .collect();
        for tracker in TrackerKind::all() {
            let config = SchedulerConfig {
                tracker,
                workers: 3,
                deterministic: false,
                ..SchedulerConfig::default()
            };
            let mut run = ParallelRun::new(db.clone(), mappings.clone(), ops.clone(), 1, config);
            let metrics = run.run(&mut RandomResolver::seeded(17)).unwrap();
            assert_eq!(metrics.workload_size, 12);
            assert!(metrics.steps >= 12);
            let stats = run.update_stats();
            assert!(stats.iter().all(|(_, s)| s.steps > 0), "every update must have run");
            let (final_db, mappings, _) = run.into_parts();
            assert!(
                satisfies_all(&final_db.snapshot(UpdateId::OMNISCIENT), &mappings),
                "{tracker}: final database must satisfy all mappings"
            );
            assert!(final_db.visible_count(c, UpdateId::OMNISCIENT) >= 12);
        }
    }

    #[test]
    fn free_running_with_interference_repairs_premature_reads() {
        // The Example 3.1 scenario under free-running: whatever interleaving
        // the OS produces, every surviving excursion must be backed by a
        // still-existing tour.
        let (db, mappings) = example_db();
        for seed in 0..4u64 {
            let config = SchedulerConfig {
                tracker: TrackerKind::Precise,
                workers: 4,
                deterministic: false,
                ..SchedulerConfig::default()
            };
            let mut run =
                ParallelRun::new(db.clone(), mappings.clone(), example_ops(&db), 1, config);
            let metrics = run.run(&mut RandomResolver::seeded(seed)).unwrap();
            assert!(metrics.steps > 0);
            let (final_db, mappings, _) = run.into_parts();
            let snap = final_db.snapshot(UpdateId::OMNISCIENT);
            assert!(satisfies_all(&snap, &mappings), "seed {seed}");
            let e = final_db.relation_id("E").unwrap();
            let t = final_db.relation_id("T").unwrap();
            let tours = final_db.scan(t, UpdateId::OMNISCIENT);
            // Only the excursions the *workload's* convention inserts caused:
            // the seed excursion may legitimately outlive the tour (σ4 never
            // requires RHS cleanup), exactly as in the reference test.
            for (_, excursion) in final_db.scan(e, UpdateId::OMNISCIENT) {
                if excursion[0] == Value::constant("Science Conf") {
                    continue;
                }
                assert!(
                    tours.iter().any(|(_, tour)| tour[0] == excursion[1]),
                    "seed {seed}: excursion {excursion:?} must be backed by an existing tour"
                );
            }
        }
    }

    #[test]
    fn step_limit_guards_both_modes() {
        let (db, mappings) = example_db();
        for deterministic in [true, false] {
            let config = SchedulerConfig {
                max_total_steps: 1,
                workers: 2,
                deterministic,
                ..SchedulerConfig::default()
            };
            let mut run =
                ParallelRun::new(db.clone(), mappings.clone(), example_ops(&db), 1, config);
            let result = run.run(&mut RandomResolver::seeded(2));
            assert!(
                matches!(result, Err(ChaseError::StepLimitExceeded { .. })),
                "deterministic={deterministic}"
            );
        }
    }

    #[test]
    fn stratum_policy_terminates_in_both_modes() {
        let (db, mappings) = example_db();
        for deterministic in [true, false] {
            let config = SchedulerConfig {
                policy: SchedulingPolicy::StratumRoundRobin,
                workers: 2,
                deterministic,
                ..SchedulerConfig::default()
            };
            let mut run =
                ParallelRun::new(db.clone(), mappings.clone(), example_ops(&db), 1, config);
            let metrics = run.run(&mut RandomResolver::seeded(2)).unwrap();
            assert!(metrics.steps >= 2, "deterministic={deterministic}");
            assert!(run.update_stats().iter().all(|(_, s)| s.steps > 0));
        }
    }
}
